// Package model implements the paper's cost model (§4.2–§4.4): the
// expected execution time of the sublist algorithm on the Cray C90
// assembled from the measured per-loop linear models of §3, the
// closed-form approximation of Eq. 5, the multiprocessor form of
// Eq. 6, and the tuning procedure that chooses the number of sublists
// m and the first pack point S1 for each list length n — ending with
// the cubic-in-log(n) polynomial fits §4.4 prescribes for use at run
// time.
package model

import (
	"math"

	"listrank/internal/sched"
	"listrank/internal/stats"
)

// LoopModel is one measured vector loop: T(x) = A·x + B cycles over x
// active elements.
type LoopModel struct {
	A, B float64
}

// At evaluates the loop model.
func (lm LoopModel) At(x float64) float64 { return lm.A*x + lm.B }

// Constants holds every measured loop model of §3 plus the serial
// Phase 2 rate of §4.3, in Cray C90 clock cycles.
type Constants struct {
	Initialize      LoopModel // T = 22x + 1800 to set up x sublists
	InitialScan     LoopModel // T = 3.4x + 35 per link over x sublists
	InitialPack     LoopModel // T = 8.2x + 1200 per load balance
	FindSublistList LoopModel // T = 11x + 650 to link the reduced list
	FinalScan       LoopModel // T = 4.6x + 28 per link (Phase 3)
	FinalPack       LoopModel // T = 7.2x + 950 per load balance
	RestoreList     LoopModel // T = 4.2x + 300 to reconnect sublists
	// SerialPerVertex is the serial list-scan rate used for small
	// Phase 2 instances: "no worse than the serial time (44
	// cycles/vertex)" (§4.3).
	SerialPerVertex float64
	// ClockNS converts cycles to nanoseconds (4.2 on the C90).
	ClockNS float64
}

// PaperConstants returns the constants measured in §3 of the paper.
func PaperConstants() Constants {
	return Constants{
		Initialize:      LoopModel{22, 1800},
		InitialScan:     LoopModel{3.4, 35},
		InitialPack:     LoopModel{8.2, 1200},
		FindSublistList: LoopModel{11, 650},
		FinalScan:       LoopModel{4.6, 28},
		FinalPack:       LoopModel{7.2, 950},
		RestoreList:     LoopModel{4.2, 300},
		SerialPerVertex: 44,
		ClockNS:         4.2,
	}
}

// PredictPhase evaluates Eq. 3's traversal+pack portion for one phase
// with loop models scan and pack and the given schedule, via the
// shared step-function integration in package sched.
func (c Constants) PredictPhase(n, m int, schedule []int, scan, pack LoopModel) float64 {
	return sched.ExpectedPhaseCost(n, m, schedule, scan.A, scan.B, pack.A, pack.B)
}

// Phase2Cycles returns the predicted cost of scanning the reduced
// list of k sublist sums on p processors, and whether Wyllie's
// algorithm is the cheaper choice. The paper uses serial scan for
// small reduced lists and Wyllie's pointer jumping for moderate ones,
// "where it can take advantage of vectorization and multiprocessing"
// (§2.5); the crossover falls out of the two cost models.
func (c Constants) Phase2Cycles(k, p int, contention float64) (float64, bool) {
	ser := c.SerialPerVertex * float64(k)
	if k < 4 {
		return ser, false
	}
	kp := float64((k + p - 1) / p)
	rounds := 0
	for span := 1; span < k-1; span <<= 1 {
		rounds++
	}
	// Per round: the 3.4-rate jump loop over each processor's chunk
	// plus two loop startups (jump and buffer swap bookkeeping), plus
	// the suffix-to-prefix conversion pass at the end.
	wyl := float64(rounds)*(contention*c.InitialScan.A*kp+2*c.InitialScan.B) +
		contention*1.0*kp + c.InitialScan.B
	if wyl < ser {
		return wyl, true
	}
	return ser, false
}

// Predict returns the expected one-processor cycle count of the full
// algorithm on a list of n vertices with m splitters and the given
// pack schedules for Phases 1 and 3 (Eq. 3 assembled from all seven
// loop models, with the cheaper of serial and Wyllie Phase 2).
func (c Constants) Predict(n, m int, sched1, sched3 []int) float64 {
	x := float64(m + 1)
	t := c.Initialize.At(x)
	t += c.PredictPhase(n, m, sched1, c.InitialScan, c.InitialPack)
	t += c.FindSublistList.At(x)
	p2, _ := c.Phase2Cycles(m+1, 1, 1)
	t += p2
	t += c.PredictPhase(n, m, sched3, c.FinalScan, c.FinalPack)
	t += c.RestoreList.At(x)
	return t
}

// PredictEq5 is the paper's closed-form approximation (Eq. 5):
//
//	T(n) ≈ 8n + 62·(n/m)·ln m + (8·S1 + 96)(m+1) + 2150·l + 2750
//
// where l is the number of load balances. The paper notes Eq. 5
// overestimates the measured time; it is exposed for the experiment
// that checks exactly that (EXPERIMENTS.md, §4.4).
func PredictEq5(n, m, s1, l int) float64 {
	return 8*float64(n) +
		62*float64(n)/float64(m)*math.Log(float64(m)) +
		(8*float64(s1)+96)*float64(m+1) +
		2150*float64(l) + 2750
}

// PredictMultiproc is Eq. 6: the p-processor time, with the
// vector-parallel work divided by p and the per-phase constants and
// Phase 2 kept serial. contention inflates the memory-bound traversal
// terms (the paper's observed bandwidth sharing; pass 1 for the ideal
// form of Eq. 6).
func (c Constants) PredictMultiproc(n, m int, sched1, sched3 []int, p int, contention float64) float64 {
	if p < 1 {
		p = 1
	}
	x := float64(m + 1)
	// Each processor owns (m+1)/p sublists of the same expected
	// distribution: scale both n and m down by p for the phase
	// integration.
	np := (n + p - 1) / p
	mp := (m + 1 + p - 1) / p
	if mp < 1 {
		mp = 1
	}
	t := c.Initialize.At(x/float64(p)) + c.Initialize.B*(1-1/float64(p)) // setup split across procs
	t += contention * c.PredictPhase(np, mp, sched1, c.InitialScan, c.InitialPack)
	t += c.FindSublistList.At(x / float64(p))
	p2, _ := c.Phase2Cycles(m+1, p, contention)
	t += p2
	t += contention * c.PredictPhase(np, mp, sched3, c.FinalScan, c.FinalPack)
	t += c.RestoreList.At(x / float64(p))
	return t
}

// Tuned holds the tuned parameters for one list length.
type Tuned struct {
	N         int
	M         int
	S1        int
	Schedule1 []int // Phase 1 pack schedule
	Schedule3 []int // Phase 3 pack schedule
	Cycles    float64
	PerVertex float64
}

// Tune searches over m (geometric grid) and S1 (via sched.OptimizeS1)
// for the parameters minimizing Predict at list length n — the
// procedure of §4.4 ("for each value of n we find values of m and S1
// that minimized the running time within about two percent").
func (c Constants) Tune(n int) Tuned {
	best := Tuned{N: n, Cycles: math.Inf(1)}
	if n < 8 {
		return Tuned{N: n, M: 0, Cycles: c.SerialPerVertex * float64(n), PerVertex: c.SerialPerVertex}
	}
	// Candidate means n/m from 4 to 4096 on a geometric grid.
	for mean := 4.0; mean <= 4096; mean *= 1.3 {
		m := int(float64(n) / mean)
		if m < 1 {
			break
		}
		if m > n/2 {
			continue
		}
		s1a, s1 := sched.OptimizeS1(n, m, sched.Params{A: c.InitialScan.A, C: c.InitialPack.A}, c.InitialScan.B, c.InitialPack.B)
		_, s3 := sched.OptimizeS1(n, m, sched.Params{A: c.FinalScan.A, C: c.FinalPack.A}, c.FinalScan.B, c.FinalPack.B)
		t := c.Predict(n, m, s1, s3)
		if t < best.Cycles {
			best = Tuned{
				N: n, M: m, S1: int(s1a + 0.5),
				Schedule1: s1, Schedule3: s3,
				Cycles: t, PerVertex: t / float64(n),
			}
		}
	}
	return best
}

// SchedulesFor generates the Phase 1 and Phase 3 pack schedules from
// the Eq. 4 recurrence for a given first pack point S1, covering the
// expected longest sublist.
func (c Constants) SchedulesFor(n, m int, s1 float64) (sched1, sched3 []int) {
	maxLen := stats.ExpectedLongest(n, m)
	sched1 = sched.FromRecurrence(n, m, s1, sched.Params{A: c.InitialScan.A, C: c.InitialPack.A}, maxLen, 64)
	sched3 = sched.FromRecurrence(n, m, s1, sched.Params{A: c.FinalScan.A, C: c.FinalPack.A}, maxLen, 64)
	return sched1, sched3
}

// TuneP is Tune with the p-processor objective (Eq. 6): the paper
// tuned m and S1 separately for every processor count ("we tuned the
// parameters for 1, 2, 4, and 8 processors", §5), because the serial
// Phase 2 and the per-phase constants do not parallelize, which pushes
// the optimal m down as p grows. contention is the memory-bandwidth
// inflation factor for p processors (vm.Config.ContentionFor).
func (c Constants) TuneP(n, p int, contention float64) Tuned {
	if p <= 1 {
		return c.Tune(n)
	}
	best := Tuned{N: n, Cycles: math.Inf(1)}
	if n < 8 {
		return Tuned{N: n, M: 0, Cycles: c.SerialPerVertex * float64(n), PerVertex: c.SerialPerVertex}
	}
	for mean := 4.0; mean <= 16384; mean *= 1.3 {
		m := int(float64(n) / mean)
		if m < 1 {
			break
		}
		if m > n/2 {
			continue
		}
		// Per-processor sub-problem for the schedule.
		np := (n + p - 1) / p
		mp := (m + p) / p
		if mp < 1 {
			mp = 1
		}
		s1a, s1 := sched.OptimizeS1(np, mp, sched.Params{A: c.InitialScan.A, C: c.InitialPack.A}, c.InitialScan.B, c.InitialPack.B)
		_, s3 := sched.OptimizeS1(np, mp, sched.Params{A: c.FinalScan.A, C: c.FinalPack.A}, c.FinalScan.B, c.FinalPack.B)
		t := c.PredictMultiproc(n, m, s1, s3, p, contention)
		if t < best.Cycles {
			best = Tuned{
				N: n, M: m, S1: int(s1a + 0.5),
				Schedule1: s1, Schedule3: s3,
				Cycles: t, PerVertex: t / float64(n),
			}
		}
	}
	return best
}

// Fit holds the §4.4 polynomial fits: m and S1 as cubic polynomials of
// log2 n, usable at run time without re-tuning.
type Fit struct {
	MPoly  stats.Poly
	S1Poly stats.Poly
}

// FitTuned tunes every n in ns and fits cubics in log2(n) to the
// resulting m and S1 ("It appears that m and S1 are approximately
// cubic polynomials of log n", §4.4).
func (c Constants) FitTuned(ns []int) Fit {
	xs := make([]float64, len(ns))
	ms := make([]float64, len(ns))
	s1s := make([]float64, len(ns))
	for i, n := range ns {
		tn := c.Tune(n)
		xs[i] = math.Log2(float64(n))
		ms[i] = float64(tn.M)
		s1s[i] = float64(tn.S1)
	}
	return Fit{
		MPoly:  stats.FitPoly(xs, ms, 3),
		S1Poly: stats.FitPoly(xs, s1s, 3),
	}
}

// M returns the fitted splitter count for list length n, clamped to a
// sane range.
func (f Fit) M(n int) int {
	m := int(f.MPoly.Eval(math.Log2(float64(n))))
	if m < 1 {
		m = 1
	}
	if m > n/2 {
		m = n / 2
	}
	return m
}

// S1 returns the fitted first pack point for list length n.
func (f Fit) S1(n int) int {
	s := int(f.S1Poly.Eval(math.Log2(float64(n))))
	if s < 1 {
		s = 1
	}
	return s
}
