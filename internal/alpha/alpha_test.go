package alpha

import (
	"testing"

	"listrank/internal/list"
	"listrank/internal/rng"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 32, Ways: 2})
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) || !c.Access(8) || !c.Access(31) {
		t.Fatal("same-line access missed")
	}
	if c.Access(32) {
		t.Fatal("next line hit cold")
	}
	a, m := c.Stats()
	if a != 5 || m != 2 {
		t.Fatalf("stats = %d accesses %d misses", a, m)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 sets × 2 ways × 32B lines = 128 bytes. Lines 0, 2, 4 map to
	// set 0; the third installs by evicting the LRU (line 0).
	c := NewCache(CacheConfig{SizeBytes: 128, LineBytes: 32, Ways: 2})
	c.Access(0)      // line 0 -> set 0
	c.Access(64)     // line 2 -> set 0
	c.Access(128)    // line 4 -> set 0, evicts line 0
	if c.Access(0) { // must miss now
		t.Fatal("evicted line still present")
	}
	if !c.Access(128) {
		t.Fatal("MRU line was evicted instead of LRU")
	}
}

func TestCacheAssociativityMatters(t *testing.T) {
	// Two lines conflicting in a direct-mapped cache coexist in a
	// 2-way one.
	dm := NewCache(CacheConfig{SizeBytes: 64, LineBytes: 32, Ways: 1})
	dm.Access(0)
	dm.Access(64) // conflicts with line 0 in the 2-set direct map? set count = 2; line0->set0, line2->set0
	if dm.Access(0) {
		t.Fatal("direct-mapped conflict not evicted")
	}
	twoWay := NewCache(CacheConfig{SizeBytes: 64, LineBytes: 32, Ways: 2})
	twoWay.Access(0)
	twoWay.Access(64)
	if !twoWay.Access(0) {
		t.Fatal("2-way cache evicted despite free way")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, LineBytes: 32, Ways: 1})
	c.Access(0)
	c.Reset()
	if c.Access(0) {
		t.Fatal("hit after Reset")
	}
	if a, m := c.Stats(); a != 1 || m != 1 {
		t.Fatal("stats not reset")
	}
}

func TestRankCorrectness(t *testing.T) {
	w := DEC3000600()
	l := list.NewRandom(5000, rng.New(1))
	got, _ := w.Rank(l)
	want := l.Ranks()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank[%d] = %d want %d", i, got[i], want[i])
		}
	}
	got, _ = w.RankWarm(l)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("warm rank[%d] = %d want %d", i, got[i], want[i])
		}
	}
}

func TestScanCorrectness(t *testing.T) {
	w := DEC3000600()
	r := rng.New(2)
	l := list.NewRandom(3000, r)
	l.RandomValues(-50, 50, r)
	want := l.ExclusiveScan()
	got, _ := w.Scan(l)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d want %d", i, got[i], want[i])
		}
	}
	got, _ = w.ScanWarm(l)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("warm scan[%d] = %d want %d", i, got[i], want[i])
		}
	}
}

// TestTableIEndpoints verifies the calibration: a list that fits in
// the 2MB cache runs at the "Cache" column rates when warm, and a list
// far larger than the cache runs at the "Memory" column rates.
func TestTableIEndpoints(t *testing.T) {
	w := DEC3000600()
	small := list.NewRandom(1<<13, rng.New(3)) // 8K vertices: 128KB working set
	big := list.NewRandom(1<<21, rng.New(4))   // 2M vertices: ≫ 2MB

	_, ns := w.RankWarm(small)
	per := ns / float64(small.Len())
	if per < 95 || per > 130 {
		t.Errorf("warm small rank = %.0f ns/vertex, want ≈ 98", per)
	}
	_, ns = w.Rank(big)
	per = ns / float64(big.Len())
	if per < 620 || per > 700 {
		t.Errorf("cold big rank = %.0f ns/vertex, want ≈ 690", per)
	}
	_, ns = w.ScanWarm(small)
	per = ns / float64(small.Len())
	if per < 195 || per > 260 {
		t.Errorf("warm small scan = %.0f ns/vertex, want ≈ 200", per)
	}
	_, ns = w.Scan(big)
	per = ns / float64(big.Len())
	if per < 890 || per > 1000 {
		t.Errorf("cold big scan = %.0f ns/vertex, want ≈ 990", per)
	}
}

func TestOrderedListIsFriendly(t *testing.T) {
	// Sequential layout amortizes misses across the 4 words of each
	// line even when the list exceeds the cache: the cost must sit
	// well below the random-memory endpoint.
	w := DEC3000600()
	big := list.NewOrdered(1 << 21)
	_, ns := w.Rank(big)
	per := ns / float64(big.Len())
	if per > 350 {
		t.Errorf("ordered big rank = %.0f ns/vertex, want well under 690", per)
	}
}

func TestInvalidCachePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid geometry did not panic")
		}
	}()
	NewCache(CacheConfig{SizeBytes: 0, LineBytes: 32, Ways: 1})
}

func TestWorkstationConnectedComponents(t *testing.T) {
	// Two components plus an isolated vertex and a self-loop.
	edges := [][2]int32{{0, 1}, {1, 2}, {3, 4}, {2, 2}}
	w := DEC3000600()
	labels, count, ns := w.ConnectedComponents(6, edges)
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	want := []int64{0, 0, 0, 3, 3, 5}
	for v := range want {
		if labels[v] != want[v] {
			t.Errorf("labels[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
	if ns <= 0 {
		t.Error("no time charged")
	}
}

func TestWorkstationCCCacheSensitivity(t *testing.T) {
	// A graph whose parent array fits in cache must run much faster
	// per edge than one that does not — the Table I dichotomy carried
	// over to union-find.
	w := DEC3000600()
	mk := func(n int) float64 {
		edges := make([][2]int32, n)
		r := rng.New(11)
		for i := range edges {
			edges[i] = [2]int32{int32(r.Intn(n)), int32(r.Intn(n))}
		}
		_, _, ns := w.ConnectedComponents(n, edges)
		return ns / float64(n)
	}
	small := mk(1 << 12) // 32 KB of parents: cached
	large := mk(1 << 22) // 32 MB of parents: not a chance
	if large < 2*small {
		t.Errorf("per-edge cost should collapse in cache: small %.1f ns, large %.1f ns", small, large)
	}
}
