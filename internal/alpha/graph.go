package alpha

// This file extends the workstation model to the graph application
// the paper's §1 cites as the implementation record: connected
// components by serial union-find. Table I compares list ranking on
// the C90 against "fast workstations"; the conncomp-c90 experiment
// makes the same three-way comparison for connectivity, and this is
// its workstation column.
//
// The cost discipline mirrors Rank's: every find step is one
// dependent load into the parent array (base cost plus the calibrated
// miss penalty when the cache misses), edge endpoints stream
// sequentially through the cache, and stores retire through the write
// buffer uncharged.

// ConnectedComponents runs weighted union-find with path halving over
// the edge list on the modeled workstation, returning canonical
// minimum-vertex labels, the component count, and the modeled time in
// nanoseconds.
func (w Workstation) ConnectedComponents(n int, edges [][2]int32) ([]int64, int, float64) {
	cache := NewCache(w.Cache)
	parentBase := uint64(0)
	edgeBase := uint64(n*wordBytes) + arrayPad

	parent := make([]int32, n)
	size := make([]int32, n)
	for v := range parent {
		parent[v] = int32(v)
		size[v] = 1
	}
	ns := 0.0
	loadParent := func(v int32) {
		ns += w.Lat.RankBase
		if !cache.Access(parentBase + uint64(v)*wordBytes) {
			ns += w.Lat.RankMiss
		}
	}
	find := func(v int32) int32 {
		for {
			loadParent(v)
			if parent[v] == v {
				return v
			}
			loadParent(parent[v])
			parent[v] = parent[parent[v]] // store: write-buffered, free
			v = parent[v]
		}
	}
	count := n
	for i, e := range edges {
		// Edge endpoints stream sequentially (two words per edge).
		ns += w.Lat.RankBase
		if !cache.Access(edgeBase + uint64(i)*2*wordBytes) {
			ns += w.Lat.RankMiss
		}
		cache.Access(edgeBase + uint64(i)*2*wordBytes + wordBytes)
		if e[0] == e[1] {
			continue
		}
		ru, rv := find(e[0]), find(e[1])
		if ru == rv {
			continue
		}
		if size[ru] < size[rv] {
			ru, rv = rv, ru
		}
		parent[rv] = ru
		size[ru] += size[rv]
		count--
	}
	// Canonicalization: two more passes of finds (short after path
	// halving) plus sequential stores.
	minOf := make([]int64, n)
	for v := range minOf {
		minOf[v] = int64(n)
	}
	for v := 0; v < n; v++ {
		r := find(int32(v))
		if int64(v) < minOf[r] {
			minOf[r] = int64(v)
		}
	}
	labels := make([]int64, n)
	for v := 0; v < n; v++ {
		labels[v] = minOf[find(int32(v))]
	}
	return labels, count, ns
}
