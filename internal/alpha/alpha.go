// Package alpha models the DEC 3000/600 Alpha workstation that Table I
// of the paper compares against: a scalar machine whose serial
// list-ranking and list-scan times depend entirely on whether the
// linked-list data fit in the off-chip cache ("Times for the Alpha
// Depend on Whether the Data Are Already in the Cache or Not").
//
// The model is a set-associative LRU cache simulator fed by the exact
// access stream of the serial traversal, with per-vertex latencies
// calibrated to Table I's four measured endpoints:
//
//	list rank:  98 ns/vertex in cache,  690 ns/vertex from memory
//	list scan: 200 ns/vertex in cache,  990 ns/vertex from memory
//
// A vertex step pays the base (in-cache) cost plus a penalty per
// missing load: one dependent load for ranking (the successor link),
// two for scanning (link and value; their penalties overlap in the
// memory system, so the per-miss penalty is smaller than ranking's
// fully serialized one). Stores retire through the write buffer and
// are not charged. The DEC 3000/600's 2 MB direct-mapped board cache
// with 32-byte lines is the default geometry.
package alpha

import "listrank/internal/list"

// CacheConfig describes a physical cache.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Ways      int
}

// Cache is a set-associative LRU cache simulator over byte addresses.
type Cache struct {
	cfg      CacheConfig
	sets     int
	tags     [][]uint64 // per set, MRU first
	accesses int64
	misses   int64
}

// NewCache returns an empty cache. It panics on non-positive or
// non-power-of-two-incompatible geometry (sets must come out ≥ 1).
func NewCache(cfg CacheConfig) *Cache {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Ways <= 0 {
		panic("alpha: invalid cache geometry")
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if sets < 1 {
		sets = 1
	}
	c := &Cache{cfg: cfg, sets: sets}
	c.tags = make([][]uint64, sets)
	return c
}

// Access touches addr and returns whether it hit. The line is brought
// to MRU position; on a miss the LRU way is evicted.
func (c *Cache) Access(addr uint64) bool {
	c.accesses++
	line := addr / uint64(c.cfg.LineBytes)
	set := int(line % uint64(c.sets))
	ways := c.tags[set]
	for i, tg := range ways {
		if tg == line {
			// Move to front (MRU).
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			return true
		}
	}
	c.misses++
	if len(ways) < c.cfg.Ways {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = line
	c.tags[set] = ways
	return false
}

// Stats returns the access and miss counts so far.
func (c *Cache) Stats() (accesses, misses int64) { return c.accesses, c.misses }

// Reset empties the cache and zeroes counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = nil
	}
	c.accesses = 0
	c.misses = 0
}

// Latencies are the calibrated per-vertex costs in nanoseconds.
type Latencies struct {
	// RankBase is the in-cache cost of one ranking step; RankMiss is
	// added when the link load misses.
	RankBase, RankMiss float64
	// ScanBase is the in-cache cost of one scanning step; ScanMiss is
	// added per missing load (link and value).
	ScanBase, ScanMiss float64
}

// Workstation is the modeled machine.
type Workstation struct {
	Name  string
	Cache CacheConfig
	Lat   Latencies
}

// DEC3000600 returns the Table I workstation: 2 MB direct-mapped
// board cache, 32-byte lines, latencies solving the four endpoints.
func DEC3000600() Workstation {
	return Workstation{
		Name:  "DEC 3000/600 Alpha",
		Cache: CacheConfig{SizeBytes: 2 << 20, LineBytes: 32, Ways: 1},
		Lat: Latencies{
			RankBase: 98, RankMiss: 592, // 98 + 592 = 690
			ScanBase: 200, ScanMiss: 395, // 200 + 2·395 = 990
		},
	}
}

// wordBytes is the size of one list element in the modeled layout.
const wordBytes = 8

// arrayPad separates the modeled arrays by a page so that their bases
// do not alias to the same direct-mapped sets when n is a power of
// two (real allocators and virtual memory provide the same effect; a
// pathological alias would make every sequential access thrash).
const arrayPad = 4096

// Rank serially ranks l, returning the ranks and the modeled time in
// nanoseconds. The address stream is: for each vertex, a load of
// next[v] (charged) and a store of out[v] (write-buffered, free but
// still installed in the cache).
func (w Workstation) Rank(l *list.List) ([]int64, float64) {
	n := l.Len()
	cache := NewCache(w.Cache)
	// Layout: next at 0, out after it.
	nextBase := uint64(0)
	outBase := uint64(n*wordBytes) + arrayPad
	out := make([]int64, n)
	ns := 0.0
	v := l.Head
	var rank int64
	for {
		ns += w.Lat.RankBase
		if !cache.Access(nextBase + uint64(v)*wordBytes) {
			ns += w.Lat.RankMiss
		}
		cache.Access(outBase + uint64(v)*wordBytes) // store, not charged
		out[v] = rank
		rank++
		nx := l.Next[v]
		if nx == v {
			return out, ns
		}
		v = nx
	}
}

// Scan serially scans l (exclusive, integer addition), returning the
// scan and the modeled time in nanoseconds. Each step loads next[v]
// and value[v] (both charged on miss) and stores out[v].
func (w Workstation) Scan(l *list.List) ([]int64, float64) {
	n := l.Len()
	cache := NewCache(w.Cache)
	nextBase := uint64(0)
	valueBase := uint64(n*wordBytes) + arrayPad
	outBase := uint64(2*n*wordBytes) + 2*arrayPad
	out := make([]int64, n)
	ns := 0.0
	v := l.Head
	var sum int64
	for {
		ns += w.Lat.ScanBase
		if !cache.Access(nextBase + uint64(v)*wordBytes) {
			ns += w.Lat.ScanMiss
		}
		if !cache.Access(valueBase + uint64(v)*wordBytes) {
			ns += w.Lat.ScanMiss
		}
		cache.Access(outBase + uint64(v)*wordBytes)
		out[v] = sum
		sum += l.Value[v]
		nx := l.Next[v]
		if nx == v {
			return out, ns
		}
		v = nx
	}
}

// RankWarm runs Rank twice and reports the second (warm) run's time:
// the "Cache" column of Table I requires the data already resident.
func (w Workstation) RankWarm(l *list.List) ([]int64, float64) {
	// A shared cache across runs: warm it with one pass.
	out, _ := w.Rank(l)
	cache := NewCache(w.Cache)
	n := l.Len()
	nextBase := uint64(0)
	outBase := uint64(n*wordBytes) + arrayPad
	// Warm pass.
	v := l.Head
	for {
		cache.Access(nextBase + uint64(v)*wordBytes)
		cache.Access(outBase + uint64(v)*wordBytes)
		if l.Next[v] == v {
			break
		}
		v = l.Next[v]
	}
	// Timed pass.
	ns := 0.0
	v = l.Head
	for {
		ns += w.Lat.RankBase
		if !cache.Access(nextBase + uint64(v)*wordBytes) {
			ns += w.Lat.RankMiss
		}
		cache.Access(outBase + uint64(v)*wordBytes)
		if l.Next[v] == v {
			return out, ns
		}
		v = l.Next[v]
	}
}

// ScanWarm is RankWarm's list-scan counterpart.
func (w Workstation) ScanWarm(l *list.List) ([]int64, float64) {
	out, _ := w.Scan(l)
	cache := NewCache(w.Cache)
	n := l.Len()
	nextBase := uint64(0)
	valueBase := uint64(n*wordBytes) + arrayPad
	outBase := uint64(2*n*wordBytes) + 2*arrayPad
	v := l.Head
	for {
		cache.Access(nextBase + uint64(v)*wordBytes)
		cache.Access(valueBase + uint64(v)*wordBytes)
		cache.Access(outBase + uint64(v)*wordBytes)
		if l.Next[v] == v {
			break
		}
		v = l.Next[v]
	}
	ns := 0.0
	v = l.Head
	for {
		ns += w.Lat.ScanBase
		if !cache.Access(nextBase + uint64(v)*wordBytes) {
			ns += w.Lat.ScanMiss
		}
		if !cache.Access(valueBase + uint64(v)*wordBytes) {
			ns += w.Lat.ScanMiss
		}
		cache.Access(outBase + uint64(v)*wordBytes)
		if l.Next[v] == v {
			return out, ns
		}
		v = l.Next[v]
	}
}
