// Package randmate implements the two randomized "random mate"
// list-ranking baselines the paper measures against (§2.3, §2.4):
//
//   - Miller–Reif [25, 31]: every active vertex flips an unbiased
//     male/female coin each round; a female whose successor is male
//     splices that successor out of the list. Idle (spliced) vertices
//     are removed from the working set every round by packing. On
//     average only 1/4 of the remaining vertices are spliced per round.
//
//   - Anderson–Miller [3, 31]: the vertices are dealt into fixed
//     per-processor queues and only the vertex at the top of each queue
//     tosses a coin, so processors stay busy without packing. Following
//     the paper's most important optimization, the coin is biased
//     (P[male] = 0.9 by default), which keeps nearly 90% of the active
//     processors splicing on every round; and like the paper we switch
//     to the serial algorithm when only a few queues remain, rather
//     than to Wyllie's algorithm.
//
// Both algorithms contract the list by splicing vertices out while
// folding the removed vertex's partial sum into its predecessor, finish
// the small contracted list serially, and then reconstruct: spliced
// vertices are reintroduced in reverse order of removal, each computing
// its scan value from its predecessor's scan value at splice time.
// All results are exclusive scans, matching package serial.
package randmate

import (
	"listrank/internal/list"
	"listrank/internal/rng"
)

// splice records one contraction step: vertex u was spliced out, its
// predecessor was f, and f's accumulated segment sum immediately before
// absorbing u was fSum. On reconstruction, out[u] = op(out[f], fSum).
type splice struct {
	u, f int64
	fSum int64
}

// Options configures the random-mate algorithms. The zero value
// selects the defaults described on each field.
type Options struct {
	// Seed seeds the coin-flip generator. Seed 0 is a valid seed.
	Seed uint64
	// SerialCutoff is the active-vertex count below which contraction
	// stops and the remaining list is scanned serially (the paper's
	// "switch to the serial algorithm when only a few queues
	// remained"). Default 64.
	SerialCutoff int
	// Queues is the number of virtual processor queues for
	// Anderson–Miller. Default 128, the number of element processors
	// the paper's C90 implementation had.
	Queues int
	// MaleBias is Anderson–Miller's P[male] for queue tops. The paper
	// found 0.9 reduced the run time by about 40% over an unbiased
	// coin. Default 0.9.
	MaleBias float64
}

func (o Options) withDefaults() Options {
	if o.SerialCutoff <= 0 {
		o.SerialCutoff = 64
	}
	if o.Queues <= 0 {
		o.Queues = 128
	}
	if o.MaleBias <= 0 || o.MaleBias >= 1 {
		o.MaleBias = 0.9
	}
	return o
}

// MillerReifScan returns the exclusive scan of l under integer
// addition using the Miller–Reif random-mate algorithm.
func MillerReifScan(l *list.List, opt Options) []int64 {
	return millerReif(l, l.Value, opt)
}

// MillerReifRanks returns the ranks of l using Miller–Reif.
func MillerReifRanks(l *list.List, opt Options) []int64 {
	ones := make([]int64, l.Len())
	for i := range ones {
		ones[i] = 1
	}
	return millerReif(l, ones, opt)
}

// RoundsStats reports the work profile of a contraction run: how many
// rounds were executed and how many splice attempts versus successful
// splices occurred. The paper's analysis of Miller–Reif (4 attempts
// per splice on average) and Anderson–Miller (≈90% success with the
// biased coin) is validated against these counters in tests and
// reported by the experiment harness.
type RoundsStats struct {
	Rounds   int
	Attempts int64
	Splices  int64
}

var lastStats RoundsStats

// LastStats returns the statistics of the most recent contraction run
// in this goroutine-free package. It exists for the harness and tests;
// it is not synchronized and must not be read concurrently with a run.
func LastStats() RoundsStats { return lastStats }

func millerReif(l *list.List, values []int64, opt Options) []int64 {
	opt = opt.withDefaults()
	n := l.Len()
	out := make([]int64, n)
	if n == 1 {
		return out
	}
	r := rng.New(opt.Seed)
	nxt := make([]int64, n)
	copy(nxt, l.Next)
	val := make([]int64, n)
	copy(val, values)
	tail := l.Tail()

	// Active set: every vertex except the tail can potentially splice
	// or be spliced. coin[v] is male (true) or female (false); the
	// tail's entry is forced female and spliced vertices are never
	// looked at again because no live link reaches them.
	active := make([]int64, 0, n)
	for i := int64(0); i < int64(n); i++ {
		if i != tail {
			active = append(active, i)
		}
	}
	coin := make([]bool, n)
	spliced := make([]bool, n)
	stack := make([]splice, 0, n)
	stats := RoundsStats{}

	for len(active) > opt.SerialCutoff {
		stats.Rounds++
		// Round part 1: every active vertex tosses an unbiased coin.
		for _, v := range active {
			coin[v] = r.Bool(0.5)
		}
		coin[tail] = false
		// Round part 2: every active female with a male successor
		// splices the successor out. The pairs (female, male) are
		// vertex-disjoint, so in-order application matches the
		// synchronous PRAM round exactly.
		for _, v := range active {
			if coin[v] {
				continue // male: passive this round
			}
			stats.Attempts++
			s := nxt[v]
			if s == v || !coin[s] {
				continue // at tail, or successor female
			}
			stack = append(stack, splice{u: s, f: v, fSum: val[v]})
			val[v] += val[s]
			nxt[v] = nxt[s]
			spliced[s] = true
			stats.Splices++
		}
		// Round part 3: pack — compress the survivors into contiguous
		// positions so later rounds do no needless work. This is the
		// operation the paper's vector implementation performs with a
		// vector compress; here it is a stable in-place filter.
		live := active[:0]
		for _, v := range active {
			if !spliced[v] {
				live = append(live, v)
			}
		}
		active = live
	}

	finishSerial(out, l.Head, nxt, val)
	reconstruct(out, stack)
	lastStats = stats
	return out
}

// AndersonMillerScan returns the exclusive scan of l under integer
// addition using the Anderson–Miller random-mate algorithm.
func AndersonMillerScan(l *list.List, opt Options) []int64 {
	return andersonMiller(l, l.Value, opt)
}

// AndersonMillerRanks returns the ranks of l using Anderson–Miller.
func AndersonMillerRanks(l *list.List, opt Options) []int64 {
	ones := make([]int64, l.Len())
	for i := range ones {
		ones[i] = 1
	}
	return andersonMiller(l, ones, opt)
}

func andersonMiller(l *list.List, values []int64, opt Options) []int64 {
	opt = opt.withDefaults()
	n := l.Len()
	out := make([]int64, n)
	if n == 1 {
		return out
	}
	r := rng.New(opt.Seed)
	nxt := make([]int64, n)
	copy(nxt, l.Next)
	val := make([]int64, n)
	copy(val, values)
	head, tail := l.Head, l.Tail()

	// Doubly link the list: splicing the top of a queue requires its
	// predecessor (the paper's algorithms of this family need >2n
	// extra space, Table II; the pred array is where it goes).
	pred := make([]int64, n)
	pred[head] = head
	for i := int64(0); i < int64(n); i++ {
		if s := nxt[i]; s != i {
			pred[s] = i
		}
	}

	// Deal the vertices into q queues in index order; queue j owns the
	// contiguous block [j*n/q, (j+1)*n/q). The head and tail can never
	// be spliced, so they are skipped when they surface.
	q := opt.Queues
	if q > n {
		q = n
	}
	qLo := make([]int, q)
	qHi := make([]int, q)
	for j := 0; j < q; j++ {
		qLo[j] = j * n / q
		qHi[j] = (j + 1) * n / q
	}

	spliced := make([]bool, n)
	maleTop := make([]bool, n)
	stack := make([]splice, 0, n)
	stats := RoundsStats{}
	remaining := n - 2 // vertices that can still be spliced
	if remaining < 0 {
		remaining = 0
	}

	type decision struct{ u, p int64 }
	decisions := make([]decision, 0, q)
	tops := make([]int64, 0, q)

	for remaining > opt.SerialCutoff {
		stats.Rounds++
		// Surface each queue's current top, discarding already-spliced
		// vertices and the unspliceable head/tail.
		tops = tops[:0]
		for j := 0; j < q; j++ {
			for qLo[j] < qHi[j] {
				u := int64(qLo[j])
				if spliced[u] || u == head || u == tail {
					qLo[j]++
					continue
				}
				tops = append(tops, u)
				break
			}
		}
		if len(tops) == 0 {
			break
		}
		// Toss the biased coin for every top (everyone else is female).
		for _, u := range tops {
			maleTop[u] = r.Bool(opt.MaleBias)
		}
		// Decide synchronously: a male top pointed to by a female can
		// be spliced. (Adjacent male tops block each other, which is
		// why splices in one round are never adjacent and can be
		// applied in any order.)
		decisions = decisions[:0]
		for _, u := range tops {
			stats.Attempts++
			if maleTop[u] && !maleTop[pred[u]] {
				decisions = append(decisions, decision{u: u, p: pred[u]})
			}
		}
		// Apply.
		for _, d := range decisions {
			u, p := d.u, d.p
			stack = append(stack, splice{u: u, f: p, fSum: val[p]})
			val[p] += val[u]
			s := nxt[u]
			nxt[p] = s
			if s != u {
				pred[s] = p
			}
			spliced[u] = true
			stats.Splices++
			remaining--
		}
		// Clear the coin marks we set (cheap: only the tops).
		for _, u := range tops {
			maleTop[u] = false
		}
	}

	finishSerial(out, head, nxt, val)
	reconstruct(out, stack)
	lastStats = stats
	return out
}

// finishSerial computes the exclusive scan of the contracted list
// reachable from head, writing results for the surviving vertices.
func finishSerial(out []int64, head int64, nxt, val []int64) {
	v := head
	var acc int64
	for {
		out[v] = acc
		acc += val[v]
		s := nxt[v]
		if s == v {
			return
		}
		v = s
	}
}

// reconstruct reintroduces spliced vertices in reverse order of
// removal: when u was spliced its predecessor f carried the scan
// prefix out[f] and segment sum fSum covering exactly the vertices
// between f and u, so u's exclusive prefix is out[f] + fSum.
func reconstruct(out []int64, stack []splice) {
	for i := len(stack) - 1; i >= 0; i-- {
		sp := stack[i]
		out[sp.u] = out[sp.f] + sp.fSum
	}
}
