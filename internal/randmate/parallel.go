package randmate

import (
	"listrank/internal/list"
	"listrank/internal/par"
	"listrank/internal/rng"
)

// AndersonMillerScanParallel is the multiprocessor Anderson–Miller
// list scan: the paper notes the algorithm "scales almost linearly"
// and is faster than serial on multiple physical processors for long
// lists (§2.4). The virtual-processor queues are dealt to workers
// once; each round proceeds in three barrier-separated steps so that
// every decision reads round-start state:
//
//  1. every worker surfaces its queue tops and publishes their coin
//     flips (writes go only to the worker's own tops);
//  2. every worker decides which of its tops splice (reads only);
//  3. every worker applies its splices. Spliced vertices are never
//     adjacent within a round, so all the cells written — the
//     predecessor's value and link, the successor's back-pointer, the
//     spliced flag — are distinct across all workers.
//
// Reconstruction replays the rounds newest-first; within one round the
// records are independent (a splice's survivor is never the same
// round's victim), so each round is expanded with a parallel pass.
func AndersonMillerScanParallel(l *list.List, opt Options, procs int) []int64 {
	return andersonMillerParallel(l, l.Value, opt, procs)
}

// AndersonMillerRanksParallel is the ranking counterpart.
func AndersonMillerRanksParallel(l *list.List, opt Options, procs int) []int64 {
	ones := make([]int64, l.Len())
	for i := range ones {
		ones[i] = 1
	}
	return andersonMillerParallel(l, ones, opt, procs)
}

func andersonMillerParallel(l *list.List, values []int64, opt Options, procs int) []int64 {
	opt = opt.withDefaults()
	n := l.Len()
	out := make([]int64, n)
	if n == 1 {
		return out
	}
	procs = par.Procs(procs, n)
	if procs == 1 {
		return andersonMiller(l, values, opt)
	}

	nxt := make([]int64, n)
	copy(nxt, l.Next)
	val := make([]int64, n)
	copy(val, values)
	head, tail := l.Head, l.Tail()

	pred := make([]int64, n)
	pred[head] = head
	par.ForChunks(n, procs, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if s := nxt[i]; s != int64(i) {
				pred[s] = int64(i)
			}
		}
	})

	q := opt.Queues
	if q > n {
		q = n
	}
	if q < procs {
		q = procs
	}
	// Queue j owns block [j*n/q, (j+1)*n/q); worker w owns queues
	// [w*q/procs, (w+1)*q/procs).
	qLo := make([]int, q)
	qHi := make([]int, q)
	for j := 0; j < q; j++ {
		qLo[j] = j * n / q
		qHi[j] = (j + 1) * n / q
	}

	spliced := make([]bool, n)
	maleTop := make([]bool, n)
	// Per-worker round state.
	type workerRound struct {
		tops      []int64
		decisions []splice
		remaining int64      // vertices this worker can still splice
		rounds    [][]splice // per-round records for reconstruction
	}
	workers := make([]workerRound, procs)
	par.ForChunks(q, procs, func(w, loQ, hiQ int) {
		count := int64(0)
		for j := loQ; j < hiQ; j++ {
			for i := qLo[j]; i < qHi[j]; i++ {
				if int64(i) != head && int64(i) != tail {
					count++
				}
			}
		}
		workers[w].remaining = count
	})

	const maxRounds = 1 << 20 // safety net; expected rounds ≈ n/(0.8q)
	par.RunWorkers(procs, func(w int, b *par.Barrier) {
		wr := &workers[w]
		r := rng.New(opt.Seed + uint64(w)*0x9e3779b97f4a7c15)
		loQ, hiQ := par.Chunk(q, procs, w)
		for round := 0; round < maxRounds; round++ {
			// Global termination check on round-start state.
			total := int64(0)
			for i := range workers {
				total += workers[i].remaining
			}
			if total <= int64(opt.SerialCutoff) {
				break
			}
			// Step 1: surface tops, toss coins, publish.
			wr.tops = wr.tops[:0]
			for j := loQ; j < hiQ; j++ {
				for qLo[j] < qHi[j] {
					u := int64(qLo[j])
					if spliced[u] || u == head || u == tail {
						qLo[j]++
						continue
					}
					wr.tops = append(wr.tops, u)
					break
				}
			}
			for _, u := range wr.tops {
				maleTop[u] = r.Bool(opt.MaleBias)
			}
			b.Wait()
			// Step 2: decide from frozen round state.
			wr.decisions = wr.decisions[:0]
			for _, u := range wr.tops {
				if maleTop[u] && !maleTop[pred[u]] {
					wr.decisions = append(wr.decisions, splice{u: u, f: pred[u], fSum: val[pred[u]]})
				}
			}
			b.Wait()
			// Step 3: apply (all touched cells distinct across workers).
			for _, d := range wr.decisions {
				u, p := d.u, d.f
				val[p] += val[u]
				s := nxt[u]
				nxt[p] = s
				if s != u {
					pred[s] = p
				}
				spliced[u] = true
			}
			wr.remaining -= int64(len(wr.decisions))
			wr.rounds = append(wr.rounds, append([]splice(nil), wr.decisions...))
			// Clear our published coins for the next round.
			for _, u := range wr.tops {
				maleTop[u] = false
			}
			b.Wait()
		}
	})

	finishSerial(out, head, nxt, val)

	// Parallel reconstruction, newest round first. Workers advanced at
	// the same round cadence (shared barrier), so round r of every
	// worker belongs to the same global round.
	maxR := 0
	for i := range workers {
		if len(workers[i].rounds) > maxR {
			maxR = len(workers[i].rounds)
		}
	}
	for ri := maxR - 1; ri >= 0; ri-- {
		par.ForChunks(procs, procs, func(_, lo, hi int) {
			for w := lo; w < hi; w++ {
				if ri >= len(workers[w].rounds) {
					continue
				}
				for _, sp := range workers[w].rounds[ri] {
					out[sp.u] = out[sp.f] + sp.fSum
				}
			}
		})
	}
	return out
}
