package randmate

import (
	"testing"
	"testing/quick"

	"listrank/internal/list"
	"listrank/internal/rng"
	"listrank/internal/serial"
)

func equal(t *testing.T, got, want []int64, what string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d want %d", what, i, got[i], want[i])
		}
	}
}

func TestMillerReifRanksSizes(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 3, 4, 10, 63, 64, 65, 100, 1000, 5000} {
		l := list.NewRandom(n, r)
		equal(t, MillerReifRanks(l, Options{Seed: uint64(n)}), l.Ranks(), "MR ranks")
	}
}

func TestMillerReifScanValues(t *testing.T) {
	r := rng.New(2)
	l := list.NewRandom(2047, r)
	l.RandomValues(-100, 100, r)
	equal(t, MillerReifScan(l, Options{Seed: 9}), serial.Scan(l), "MR scan")
}

func TestAndersonMillerRanksSizes(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{1, 2, 3, 4, 10, 100, 129, 1000, 5000} {
		l := list.NewRandom(n, r)
		equal(t, AndersonMillerRanks(l, Options{Seed: uint64(n)}), l.Ranks(), "AM ranks")
	}
}

func TestAndersonMillerScanValues(t *testing.T) {
	r := rng.New(4)
	l := list.NewRandom(3001, r)
	l.RandomValues(-100, 100, r)
	equal(t, AndersonMillerScan(l, Options{Seed: 10}), serial.Scan(l), "AM scan")
}

func TestShapes(t *testing.T) {
	for name, l := range map[string]*list.List{
		"ordered":  list.NewOrdered(777),
		"reversed": list.NewReversed(777),
		"blocked":  list.NewBlocked(777, 19, rng.New(5)),
	} {
		want := l.Ranks()
		equal(t, MillerReifRanks(l, Options{Seed: 1}), want, "MR "+name)
		equal(t, AndersonMillerRanks(l, Options{Seed: 1}), want, "AM "+name)
	}
}

func TestSeedIndependence(t *testing.T) {
	// The result must not depend on the coin-flip seed.
	l := list.NewRandom(1500, rng.New(6))
	want := serial.Scan(l)
	for seed := uint64(0); seed < 8; seed++ {
		equal(t, MillerReifScan(l, Options{Seed: seed}), want, "MR seed")
		equal(t, AndersonMillerScan(l, Options{Seed: seed}), want, "AM seed")
	}
}

func TestQueueCountVariants(t *testing.T) {
	l := list.NewRandom(2000, rng.New(7))
	want := l.Ranks()
	for _, q := range []int{1, 2, 16, 128, 1024, 4000} {
		got := AndersonMillerRanks(l, Options{Seed: 8, Queues: q})
		equal(t, got, want, "AM queues")
	}
}

func TestBiasVariants(t *testing.T) {
	l := list.NewRandom(2000, rng.New(8))
	want := l.Ranks()
	for _, bias := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := AndersonMillerRanks(l, Options{Seed: 8, MaleBias: bias})
		equal(t, got, want, "AM bias")
	}
}

func TestSerialCutoffVariants(t *testing.T) {
	l := list.NewRandom(500, rng.New(9))
	want := l.Ranks()
	for _, cut := range []int{1, 2, 8, 499, 1000} {
		equal(t, MillerReifRanks(l, Options{Seed: 1, SerialCutoff: cut}), want, "MR cutoff")
		equal(t, AndersonMillerRanks(l, Options{Seed: 1, SerialCutoff: cut}), want, "AM cutoff")
	}
}

func TestInputNotMutated(t *testing.T) {
	l := list.NewRandom(800, rng.New(10))
	l.RandomValues(-5, 5, rng.New(11))
	before := l.Clone()
	_ = MillerReifScan(l, Options{Seed: 1})
	_ = AndersonMillerScan(l, Options{Seed: 1})
	for i := range before.Next {
		if l.Next[i] != before.Next[i] || l.Value[i] != before.Value[i] {
			t.Fatalf("input mutated at vertex %d", i)
		}
	}
	if l.Head != before.Head {
		t.Fatal("head mutated")
	}
}

func TestMillerReifSpliceFraction(t *testing.T) {
	// Paper §2.3: on each round only about 1/4 of the remaining
	// vertices are spliced out (female with male successor = 1/2 * 1/2).
	l := list.NewRandom(1<<16, rng.New(12))
	_ = MillerReifRanks(l, Options{Seed: 13, SerialCutoff: 1 << 12})
	st := LastStats()
	if st.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	// Attempts counts the females that tried (≈ half of the active
	// vertices each round); about half of those succeed, so the
	// success ratio should be near 1/2 of attempts, i.e. splices ≈
	// attempts/2, and overall splices per round per active ≈ 1/4.
	ratio := float64(st.Splices) / float64(st.Attempts)
	if ratio < 0.40 || ratio > 0.60 {
		t.Errorf("MR splice/attempt ratio = %.3f, want ≈ 0.5", ratio)
	}
}

func TestAndersonMillerBiasedCoinRate(t *testing.T) {
	// Paper §2.4: with P[male] = 0.9 almost 90% of the active
	// processors splice out a vertex on every round.
	l := list.NewRandom(1<<16, rng.New(14))
	_ = AndersonMillerRanks(l, Options{Seed: 15, MaleBias: 0.9})
	st := LastStats()
	ratio := float64(st.Splices) / float64(st.Attempts)
	if ratio < 0.75 || ratio > 0.95 {
		t.Errorf("AM splice/attempt ratio = %.3f, want ≈ 0.9*(1-0.09)", ratio)
	}
	// And the biased coin should need fewer rounds than unbiased.
	_ = AndersonMillerRanks(l, Options{Seed: 15, MaleBias: 0.5})
	unbiased := LastStats()
	if st.Rounds >= unbiased.Rounds {
		t.Errorf("biased coin used %d rounds, unbiased %d; expected fewer",
			st.Rounds, unbiased.Rounds)
	}
}

func TestQuickAgainstSerial(t *testing.T) {
	f := func(seed uint64, nn uint16, am bool) bool {
		n := int(nn%3000) + 1
		r := rng.New(seed)
		l := list.NewRandom(n, r)
		l.RandomValues(-20, 20, r)
		want := serial.Scan(l)
		var got []int64
		if am {
			got = AndersonMillerScan(l, Options{Seed: seed ^ 0xff})
		} else {
			got = MillerReifScan(l, Options{Seed: seed ^ 0xff})
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMillerReif64K(b *testing.B) {
	l := list.NewRandom(1<<16, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MillerReifRanks(l, Options{Seed: uint64(i)})
	}
}

func BenchmarkAndersonMiller64K(b *testing.B) {
	l := list.NewRandom(1<<16, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AndersonMillerRanks(l, Options{Seed: uint64(i)})
	}
}

func TestAndersonMillerParallel(t *testing.T) {
	r := rng.New(40)
	for _, n := range []int{1, 2, 100, 5000, 60000} {
		l := list.NewRandom(n, r)
		l.RandomValues(-50, 50, r)
		want := serial.Scan(l)
		for _, p := range []int{1, 2, 3, 4, 8} {
			got := AndersonMillerScanParallel(l, Options{Seed: uint64(n + p)}, p)
			equal(t, got, want, "AM parallel scan")
		}
	}
}

func TestAndersonMillerParallelRanks(t *testing.T) {
	l := list.NewRandom(30000, rng.New(41))
	want := l.Ranks()
	for _, p := range []int{2, 4} {
		got := AndersonMillerRanksParallel(l, Options{Seed: 42}, p)
		equal(t, got, want, "AM parallel ranks")
	}
}

func TestAndersonMillerParallelShapes(t *testing.T) {
	for name, l := range map[string]*list.List{
		"ordered":  list.NewOrdered(10000),
		"reversed": list.NewReversed(10000),
	} {
		got := AndersonMillerRanksParallel(l, Options{Seed: 43}, 4)
		equal(t, got, l.Ranks(), "AM parallel "+name)
	}
}

func TestAndersonMillerParallelFewQueues(t *testing.T) {
	// Queue count below the worker count must be raised, not deadlock.
	l := list.NewRandom(5000, rng.New(44))
	got := AndersonMillerScanParallel(l, Options{Seed: 45, Queues: 2}, 8)
	equal(t, got, serial.Scan(l), "AM parallel few queues")
}
