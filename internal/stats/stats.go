// Package stats implements the probabilistic analysis of §4.1 of the
// paper — the distribution of sublist lengths when a list of length n
// is cut at m random positions — together with the least-squares
// machinery §4.4 uses to fit the tuned parameters m(n) and S1(n) as
// cubic polynomials of log n.
//
// The key fact (Proposition 2, from Feller): as m → ∞ the gaps between
// m uniform points behave like independent exponential variables with
// mean 1/m, so sublist lengths are approximately exponential with mean
// n/m, and the expected number of sublists longer than x is
//
//	g(x) = (m+1)·e^(−m·x/n)            (Eq. 2)
//
// which is the curve the load-balancing schedule of §4 is built on.
package stats

import "math"

// G returns g(x) = (m+1)·e^(−m·x/n), the expected number of sublists
// of length greater than x when a list of n vertices is divided into
// m+1 sublists at random positions (Eq. 2).
func G(x float64, n, m int) float64 {
	return float64(m+1) * math.Exp(-float64(m)*x/float64(n))
}

// GDeriv returns g'(x) = −(m/n)·g(x), used by the schedule recurrence.
func GDeriv(x float64, n, m int) float64 {
	return -float64(m) / float64(n) * G(x, n, m)
}

// ExpectedOrderedLength returns the expected length of the j-th
// shortest of the m+1 sublists (j in [0, m]), from inverting the
// survival function: solve e^(−m·x/n) = (m−j+0.5)/(m+1) for x.
// For j = 0 this is (n/m)·ln((m+1)/(m+0.5)) and for j = m it is
// (n/m)·ln(2m+2), the paper's extremes (§4.1). The estimate is
// reasonable for n > 1000 and m > 100, as the paper notes.
func ExpectedOrderedLength(n, m, j int) float64 {
	num := float64(m) - float64(j) + 0.5
	den := float64(m + 1)
	return -float64(n) / float64(m) * math.Log(num/den)
}

// ExpectedShortest and ExpectedLongest are the j = 0 and j = m special
// cases in the paper's closed forms.
func ExpectedShortest(n, m int) float64 {
	return float64(n) / float64(m) * math.Log(float64(m+1)/(float64(m)+0.5))
}

// ExpectedLongest returns (n/m)·ln(2m+2), the expected length of the
// longest sublist — the quantity that bounds the parallel running time
// of the algorithm (§2.5) and sets where the pack schedule must end.
func ExpectedLongest(n, m int) float64 {
	return float64(n) / float64(m) * math.Log(2*float64(m)+2)
}

// SampleGaps cuts [0, n) at m distinct uniformly random positions
// drawn with the provided next function (which must return a uniform
// integer in [0, bound)), and returns the m+1 gap lengths sorted
// ascending. It is the sampling experiment behind Fig. 9.
func SampleGaps(n, m int, intn func(int) int) []int {
	if m >= n {
		panic("stats: need m < n")
	}
	// Draw distinct positions in (0, n): position p means a cut
	// between vertex p−1 and p.
	seen := make(map[int]bool, m)
	cuts := make([]int, 0, m)
	for len(cuts) < m {
		p := 1 + intn(n-1)
		if !seen[p] {
			seen[p] = true
			cuts = append(cuts, p)
		}
	}
	insertionSort(cuts)
	gaps := make([]int, 0, m+1)
	prev := 0
	for _, c := range cuts {
		gaps = append(gaps, c-prev)
		prev = c
	}
	gaps = append(gaps, n-prev)
	insertionSort(gaps)
	return gaps
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// Summary holds min/mean/max over a set of samples, the error-bar
// format of Fig. 9.
type Summary struct {
	Min, Mean, Max float64
}

// Summarize reduces per-sample values to a Summary.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	s := Summary{Min: vals[0], Max: vals[0]}
	sum := 0.0
	for _, v := range vals {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(vals))
	return s
}

// Poly is a polynomial c[0] + c[1]·x + c[2]·x² + …
type Poly []float64

// Eval evaluates the polynomial at x by Horner's rule.
func (p Poly) Eval(x float64) float64 {
	v := 0.0
	for i := len(p) - 1; i >= 0; i-- {
		v = v*x + p[i]
	}
	return v
}

// FitPoly least-squares fits a polynomial of the given degree to the
// points (xs[i], ys[i]) by solving the normal equations with Gaussian
// elimination (partial pivoting). §4.4 uses degree-3 fits in log n for
// the tuned m and S1. It panics if the system is degenerate or the
// inputs mismatched.
func FitPoly(xs, ys []float64, degree int) Poly {
	if len(xs) != len(ys) {
		panic("stats: FitPoly input length mismatch")
	}
	if len(xs) < degree+1 {
		panic("stats: FitPoly needs at least degree+1 points")
	}
	k := degree + 1
	// Normal equations: A·c = b with A[r][c] = Σ x^(r+c), b[r] = Σ y·x^r.
	a := make([][]float64, k)
	b := make([]float64, k)
	for r := 0; r < k; r++ {
		a[r] = make([]float64, k)
	}
	pow := make([]float64, 2*k-1)
	for i := range xs {
		x := xs[i]
		pow[0] = 1
		for d := 1; d < len(pow); d++ {
			pow[d] = pow[d-1] * x
		}
		for r := 0; r < k; r++ {
			for c := 0; c < k; c++ {
				a[r][c] += pow[r+c]
			}
			b[r] += ys[i] * pow[r]
		}
	}
	return Poly(solve(a, b))
}

// solve performs Gaussian elimination with partial pivoting on the
// k×k system a·x = b, destroying its inputs.
func solve(a [][]float64, b []float64) []float64 {
	k := len(b)
	for col := 0; col < k; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			panic("stats: singular system in FitPoly")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		for r := col + 1; r < k; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < k; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < k; c++ {
			v -= a[r][c] * x[c]
		}
		x[r] = v / a[r][r]
	}
	return x
}
