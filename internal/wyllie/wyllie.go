// Package wyllie implements Wyllie's pointer-jumping list-ranking and
// list-scan algorithm (paper §2.2, [Wyllie 1979]).
//
// Every vertex carries a pointer and a partial sum; on each of
// ⌈log2(n-1)⌉ synchronous rounds every vertex replaces its pointer with
// its pointer's pointer and folds in the partial sum it skipped over.
// The algorithm is simple and fast for short lists but does
// O(n log n) work, so it loses to work-efficient algorithms as n grows
// — this is the sawtooth curve of the paper's Fig. 1, where each new
// round of jumping (each increment of ⌈log2(n-1)⌉) adds a full pass
// over the data.
//
// Two orientations are provided:
//
//   - the successor orientation (Ranks, Scan), which pointer-jumps the
//     Next links to compute suffix sums to the tail and then converts
//     them to exclusive prefix results by subtraction — valid for
//     integer addition (a group operation), and the cheapest form; and
//   - the predecessor orientation (ScanOp), which pointer-jumps
//     reversed links and combines in list order, computing exclusive
//     prefix scans for any associative operator with an identity,
//     commutative or not.
//
// All variants are EREW-correct: each round reads the previous round's
// arrays and writes fresh ones (double buffering), exactly as a PRAM or
// a vector register machine would.
package wyllie

import (
	"listrank/internal/list"
	"listrank/internal/par"
)

// Rounds returns the number of pointer-jumping rounds Wyllie's
// algorithm performs on a list of n vertices: ⌈log2(n-1)⌉ for n ≥ 2
// (0 for shorter lists). This is the quantity whose discontinuity
// produces the sawtooth in the paper's Fig. 1.
func Rounds(n int) int {
	if n < 2 {
		return 0
	}
	r := 0
	for span := 1; span < n-1; span <<= 1 {
		r++
	}
	return r
}

// Ranks returns the rank (number of preceding vertices) of every
// vertex of l, computed by pointer jumping on a single goroutine.
func Ranks(l *list.List) []int64 {
	return ranksP(l, 1)
}

// RanksParallel is Ranks with the n virtual processors divided among
// p goroutines, synchronized by a barrier each round.
func RanksParallel(l *list.List, p int) []int64 {
	return ranksP(l, p)
}

func ranksP(l *list.List, p int) []int64 {
	n := l.Len()
	out := make([]int64, n)
	if n == 1 {
		return out
	}
	// val[v] counts the vertices in [v, next[v]) — 1 initially, except
	// 0 at the tail (the paper's destructive-identity trick, which
	// removes every conditional from the jump loop).
	val := make([]int64, n)
	nxt := make([]int64, n)
	val2 := make([]int64, n)
	nxt2 := make([]int64, n)
	par.ForChunks(n, p, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			val[i] = 1
			nxt[i] = l.Next[i]
		}
	})
	val[l.Tail()] = 0 // identity at the tail: val[v] counts [v, next[v]).
	val, _ = jump(val, nxt, val2, nxt2, n, p)
	// val[v] now counts [v, tail): head has n-1, tail has 0.
	head := l.Head
	total := val[head]
	par.ForChunks(n, p, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = total - val[i]
		}
	})
	return out
}

// Scan returns the exclusive list scan of l under integer addition,
// computed by pointer jumping on a single goroutine.
func Scan(l *list.List) []int64 {
	return scanP(l, 1)
}

// ScanParallel is Scan on p goroutines.
func ScanParallel(l *list.List, p int) []int64 {
	return scanP(l, p)
}

func scanP(l *list.List, p int) []int64 {
	n := l.Len()
	out := make([]int64, n)
	if n == 1 {
		return out
	}
	val := make([]int64, n)
	nxt := make([]int64, n)
	val2 := make([]int64, n)
	nxt2 := make([]int64, n)
	tail := l.Tail()
	par.ForChunks(n, p, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			val[i] = l.Value[i]
			nxt[i] = l.Next[i]
		}
	})
	val[tail] = 0 // identity at the tail: val[v] sums [v, next[v]).
	val, _ = jump(val, nxt, val2, nxt2, n, p)
	// val[v] = sum over [v, tail); exclusive prefix = val[head]-val[v].
	head := l.Head
	total := val[head]
	par.ForChunks(n, p, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = total - val[i]
		}
	})
	return out
}

// jump runs ⌈log2(n-1)⌉ rounds of val[i] += val[nxt[i]];
// nxt[i] = nxt[nxt[i]] with double buffering, on p goroutines, and
// returns the buffers holding the final values and links.
func jump(val, nxt, val2, nxt2 []int64, n, p int) (fv, fn []int64) {
	rounds := Rounds(n)
	if p == 1 {
		for r := 0; r < rounds; r++ {
			for i := 0; i < n; i++ {
				s := nxt[i]
				val2[i] = val[i] + val[s]
				nxt2[i] = nxt[s]
			}
			val, val2 = val2, val
			nxt, nxt2 = nxt2, nxt
		}
		return val, nxt
	}
	p = par.Procs(p, n)
	par.RunWorkers(p, func(w int, b *par.Barrier) {
		lv, lv2, ln, ln2 := val, val2, nxt, nxt2
		lo, hi := par.Chunk(n, p, w)
		for r := 0; r < rounds; r++ {
			for i := lo; i < hi; i++ {
				s := ln[i]
				lv2[i] = lv[i] + lv[s]
				ln2[i] = ln[s]
			}
			b.Wait()
			lv, lv2 = lv2, lv
			ln, ln2 = ln2, ln
			// All workers must finish reading the old buffers before
			// anyone writes the next round into them.
			b.Wait()
		}
	})
	if rounds%2 == 1 {
		return val2, nxt2
	}
	return val, nxt
}

// ScanOp returns the exclusive list scan of l under an arbitrary
// associative operator with the given identity, combining values in
// list order (safe for non-commutative operators). It pointer-jumps
// predecessor links, so it does one extra O(n) pass to reverse the
// list.
func ScanOp(l *list.List, op func(a, b int64) int64, identity int64) []int64 {
	return ScanOpParallel(l, op, identity, 1)
}

// ScanOpParallel is ScanOp on p goroutines.
func ScanOpParallel(l *list.List, op func(a, b int64) int64, identity int64, p int) []int64 {
	n := l.Len()
	out := make([]int64, n)
	if n == 1 {
		out[l.Head] = identity
		return out
	}
	// Build predecessor links: pred[next[v]] = v; pred[head] = head.
	pred := make([]int64, n)
	pred[l.Head] = l.Head
	par.ForChunks(n, p, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			s := l.Next[i]
			if s != int64(i) {
				pred[s] = int64(i)
			}
		}
	})
	// val[v] = op-sum over segment [P[v], v) in list order.
	val := make([]int64, n)
	prd2 := make([]int64, n)
	val2 := make([]int64, n)
	par.ForChunks(n, p, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			pv := pred[i]
			if pv == int64(i) {
				val[i] = identity // head: empty segment
			} else {
				val[i] = l.Value[pv]
			}
		}
	})
	rounds := Rounds(n)
	prd := pred
	for r := 0; r < rounds; r++ {
		if p == 1 {
			for i := 0; i < n; i++ {
				pv := prd[i]
				val2[i] = op(val[pv], val[i]) // earlier segment first
				prd2[i] = prd[pv]
			}
		} else {
			par.ForChunks(n, p, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					pv := prd[i]
					val2[i] = op(val[pv], val[i])
					prd2[i] = prd[pv]
				}
			})
		}
		val, val2 = val2, val
		prd, prd2 = prd2, prd
	}
	copy(out, val)
	return out
}
