package wyllie

import (
	"testing"
	"testing/quick"

	"listrank/internal/list"
	"listrank/internal/rng"
	"listrank/internal/serial"
)

func TestRounds(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 0}, {3, 1}, {4, 2}, {5, 2}, {9, 3},
		{1025, 10}, {1026, 11}, {1 << 20, 20},
	}
	for _, c := range cases {
		if got := Rounds(c.n); got != c.want {
			t.Errorf("Rounds(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestRoundsMonotone(t *testing.T) {
	prev := 0
	for n := 1; n < 5000; n++ {
		r := Rounds(n)
		if r < prev {
			t.Fatalf("Rounds(%d)=%d < Rounds(%d)=%d", n, r, n-1, prev)
		}
		prev = r
	}
}

func equal(t *testing.T, got, want []int64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d want %d", what, i, got[i], want[i])
		}
	}
}

func TestRanksSmall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 9, 100} {
		l := list.NewRandom(n, rng.New(uint64(n)))
		equal(t, Ranks(l), l.Ranks(), "Ranks")
	}
}

func TestRanksShapes(t *testing.T) {
	for name, l := range map[string]*list.List{
		"ordered":  list.NewOrdered(513),
		"reversed": list.NewReversed(513),
		"blocked":  list.NewBlocked(513, 32, rng.New(1)),
		"random":   list.NewRandom(513, rng.New(2)),
	} {
		equal(t, Ranks(l), l.Ranks(), name)
	}
}

func TestScanMatchesSerial(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{1, 2, 7, 63, 64, 65, 1000} {
		l := list.NewRandom(n, r)
		l.RandomValues(-50, 50, r)
		equal(t, Scan(l), serial.Scan(l), "Scan")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rng.New(4)
	l := list.NewRandom(4097, r)
	l.RandomValues(-50, 50, r)
	wantR := l.Ranks()
	wantS := serial.Scan(l)
	for _, p := range []int{1, 2, 3, 4, 8} {
		equal(t, RanksParallel(l, p), wantR, "RanksParallel")
		equal(t, ScanParallel(l, p), wantS, "ScanParallel")
	}
}

func TestAlgorithmDoesNotMutateInput(t *testing.T) {
	l := list.NewRandom(500, rng.New(5))
	before := l.Clone()
	_ = Ranks(l)
	_ = Scan(l)
	_ = ScanOp(l, func(a, b int64) int64 { return a + b }, 0)
	for i := range before.Next {
		if l.Next[i] != before.Next[i] || l.Value[i] != before.Value[i] {
			t.Fatalf("input mutated at vertex %d", i)
		}
	}
}

func TestScanOpAdditionMatches(t *testing.T) {
	r := rng.New(6)
	l := list.NewRandom(1023, r)
	l.RandomValues(-5, 5, r)
	got := ScanOp(l, func(a, b int64) int64 { return a + b }, 0)
	equal(t, got, serial.Scan(l), "ScanOp(+)")
}

func packAffine(a, b int64) int64 { return a<<32 | (b & 0xffffffff) }

func affineCompose(f, g int64) int64 {
	fa, fb := f>>32, int64(int32(f))
	ga, gb := g>>32, int64(int32(g))
	a := (ga * fa) % 9973
	b := (ga*fb + gb) % 9973
	return a<<32 | (b & 0xffffffff)
}

func TestScanOpNonCommutative(t *testing.T) {
	r := rng.New(7)
	for _, n := range []int{1, 2, 3, 50, 257, 1024} {
		l := list.NewRandom(n, r)
		for i := range l.Value {
			l.Value[i] = packAffine(int64(r.Intn(7)+1), int64(r.Intn(50)))
		}
		id := packAffine(1, 0)
		got := ScanOp(l, affineCompose, id)
		want := serial.ScanOp(l, affineCompose, id)
		equal(t, got, want, "ScanOp(affine)")
	}
}

func TestScanOpParallelNonCommutative(t *testing.T) {
	r := rng.New(8)
	l := list.NewRandom(2049, r)
	for i := range l.Value {
		l.Value[i] = packAffine(int64(r.Intn(7)+1), int64(r.Intn(50)))
	}
	id := packAffine(1, 0)
	want := serial.ScanOp(l, affineCompose, id)
	for _, p := range []int{2, 4, 7} {
		equal(t, ScanOpParallel(l, affineCompose, id, p), want, "ScanOpParallel")
	}
}

func TestQuickAgainstSerial(t *testing.T) {
	f := func(seed uint64, nn uint16, pp uint8) bool {
		n := int(nn%2000) + 1
		p := int(pp%8) + 1
		r := rng.New(seed)
		l := list.NewRandom(n, r)
		l.RandomValues(-100, 100, r)
		want := serial.Scan(l)
		got := ScanParallel(l, p)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkScan64K(b *testing.B) {
	l := list.NewRandom(1<<16, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Scan(l)
	}
}

func BenchmarkScan1M(b *testing.B) {
	l := list.NewRandom(1<<20, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Scan(l)
	}
}

func BenchmarkScanParallel1M(b *testing.B) {
	l := list.NewRandom(1<<20, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ScanParallel(l, 8)
	}
}
