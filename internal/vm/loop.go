package vm

import "listrank/internal/rng"

// Loop is one chained vector loop over n active elements on a
// processor. Operations execute immediately on real data (Go slices
// act as vector register sets spanning ⌈n/128⌉ strips); End charges
// the loop's cycle cost: per-element cost is the maximum over
// functional units (chaining), plus bank stalls from indirect
// accesses, the fixed loop overhead, and any per-strip overhead.
//
// Within one loop, operations on the same unit serialize (two gathers
// cost twice the gather rate), which is exactly how the paper's
// traversal loops come out to 3.4 (two gathers) and 4.6 (two gathers
// plus a scatter) cycles per element.
//
// The data semantics assume EREW access within a loop, as PRAM
// algorithms guarantee ("processors in data parallel algorithms do
// not use the results of another processor in the same time step",
// §1.1). Read-after-write of the same *register* slice inside one
// loop is chaining and is fine.
type Loop struct {
	p *Proc
	n int
	// per-unit element counts
	gsTime        float64 // gather/scatter unit, cycles per element
	gatherPasses  int
	scatterPasses int
	loads         int
	stores        int
	alu           int
	rngOps        int
	stalls        float64 // bank stall cycles accumulated
	overhead      float64 // per-loop startup override; <0 means config default
	finished      bool
}

// Overhead overrides the configured LoopOverhead for this loop. The
// paper's loops have individually measured startup constants (35 for
// the Phase 1 traversal, 28 for Phase 3, …); this is how callers model
// them.
func (lp *Loop) Overhead(cycles float64) *Loop {
	lp.overhead = cycles
	return lp
}

// Loop begins a vector loop over n elements. n may be 0 (the loop
// still pays its startup overhead, as a real loop would at least pay
// its scalar test).
func (p *Proc) Loop(n int) *Loop {
	return &Loop{p: p, n: n, overhead: -1}
}

// DebugStall, when non-nil, receives every bank-stall event (debug).
var DebugStall func(addr int64, bank int, stall float64)

func (lp *Loop) bank(addr int64) {
	cfg := &lp.p.m.Cfg
	if cfg.NumBanks == 0 || cfg.BankBusy == 0 {
		return
	}
	b := int(addr) % cfg.NumBanks
	if b < 0 {
		b += cfg.NumBanks
	}
	// Repeated access to the address a bank served last is satisfied
	// from the bank buffer without a recovery stall (this is what keeps
	// converged pointer-jumping, where every element gathers the tail
	// word, from serializing on one bank).
	if lp.p.bankLast[b] == addr {
		lp.p.issued += cfg.GatherPerElem
		return
	}
	// Element issue time: one per gather-unit slot since processor
	// start; stall until the bank recovers. A stall really does hold
	// the issue pipeline, so the issue clock advances past it —
	// otherwise demand on a hot bank could outrun the clock without
	// bound, which no real memory system allows.
	t := lp.p.issued
	if free := lp.p.bankFree[b]; free > t {
		lp.stalls += free - t
		if DebugStall != nil {
			DebugStall(addr, b, free-t)
		}
		t = free
	}
	lp.p.bankFree[b] = t + cfg.BankBusy
	lp.p.bankLast[b] = addr
	lp.p.issued = t + cfg.GatherPerElem
}

// Gather reads dst[i] = Mem[base+idx[i]] for i < n.
func (lp *Loop) Gather(dst []int64, base int64, idx []int64) {
	mem := lp.p.m.Mem
	for i := 0; i < lp.n; i++ {
		a := base + idx[i]
		dst[i] = mem[a]
		lp.bank(a)
	}
	lp.gsTime += lp.p.m.Cfg.GatherPerElem
	lp.gatherPasses++
}

// Scatter writes Mem[base+idx[i]] = src[i] for i < n.
func (lp *Loop) Scatter(base int64, idx []int64, src []int64) {
	mem := lp.p.m.Mem
	for i := 0; i < lp.n; i++ {
		a := base + idx[i]
		mem[a] = src[i]
		lp.bank(a)
	}
	lp.gsTime += lp.p.m.Cfg.ScatterPerElem
	lp.scatterPasses++
}

// GatherReg reads dst[i] = table[idx[i]] where table is a small
// register-resident (virtual-processor state) array rather than main
// list storage. It costs a gather-unit pass but skips the bank model:
// these tables are tiny and cache in the paper's formulation as packed
// contiguous state, where systematic conflicts cannot persist.
func (lp *Loop) GatherReg(dst, table, idx []int64) {
	for i := 0; i < lp.n; i++ {
		dst[i] = table[idx[i]]
	}
	lp.gsTime += lp.p.m.Cfg.GatherPerElem
	lp.gatherPasses++
}

// ScatterReg writes table[idx[i]] = src[i] for a register-resident
// state table (see GatherReg).
func (lp *Loop) ScatterReg(table, idx, src []int64) {
	for i := 0; i < lp.n; i++ {
		table[idx[i]] = src[i]
	}
	lp.gsTime += lp.p.m.Cfg.ScatterPerElem
	lp.scatterPasses++
}

// LoadStride reads dst[i] = Mem[base+i] (unit-stride load port).
func (lp *Loop) LoadStride(dst []int64, base int64) {
	mem := lp.p.m.Mem
	copy(dst[:lp.n], mem[base:base+int64(lp.n)])
	lp.loads++
}

// StoreStride writes Mem[base+i] = src[i] (store port).
func (lp *Loop) StoreStride(base int64, src []int64) {
	mem := lp.p.m.Mem
	copy(mem[base:base+int64(lp.n)], src[:lp.n])
	lp.stores++
}

// Load models moving a vector-register set from one register slice to
// another through the load ports (e.g. reloading strip-mined virtual
// processor state). Data-wise it is a copy.
func (lp *Loop) Load(dst, src []int64) {
	copy(dst[:lp.n], src[:lp.n])
	lp.loads++
}

// Store is the store-port counterpart of Load.
func (lp *Loop) Store(dst, src []int64) {
	copy(dst[:lp.n], src[:lp.n])
	lp.stores++
}

// Add computes dst[i] = a[i] + b[i] on an arithmetic pipe.
func (lp *Loop) Add(dst, a, b []int64) {
	for i := 0; i < lp.n; i++ {
		dst[i] = a[i] + b[i]
	}
	lp.alu++
}

// AddConst computes dst[i] = a[i] + c.
func (lp *Loop) AddConst(dst, a []int64, c int64) {
	for i := 0; i < lp.n; i++ {
		dst[i] = a[i] + c
	}
	lp.alu++
}

// Iota fills dst[i] = start + i (address computation pipe).
func (lp *Loop) Iota(dst []int64, start int64) {
	for i := 0; i < lp.n; i++ {
		dst[i] = start + int64(i)
	}
	lp.alu++
}

// Const fills dst[i] = c.
func (lp *Loop) Const(dst []int64, c int64) {
	for i := 0; i < lp.n; i++ {
		dst[i] = c
	}
	lp.alu++
}

// Random fills dst with uniform values in [0, bound) from the vector
// RNG pipe.
func (lp *Loop) Random(dst []int64, r *rng.Rand, bound int64) {
	for i := 0; i < lp.n; i++ {
		dst[i] = int64(r.Uint64n(uint64(bound)))
	}
	lp.rngOps++
}

// Op applies an arbitrary elementwise binary operator on an arithmetic
// pipe: dst[i] = op(a[i], b[i]). List scan with a general associative
// operator runs through this; the C90 would implement the operator as
// a short chained sequence, so callers may charge extra ALU ops with
// ALU() to model expensive operators ("the scan operator can be more
// costly to compute than the increment operator", §2).
func (lp *Loop) Op(dst, a, b []int64, op func(x, y int64) int64) {
	for i := 0; i < lp.n; i++ {
		dst[i] = op(a[i], b[i])
	}
	lp.alu++
}

// ALU charges k additional arithmetic operations without moving data
// (comparisons, masks, selects that the modeled algorithm performs).
func (lp *Loop) ALU(k int) { lp.alu += k }

// ChargeGathers charges k gather passes on the gather/scatter unit
// without moving data — for masked indirect reads whose data movement
// the caller performs itself (masked Cray vector ops run at full
// vector length regardless of the mask).
func (lp *Loop) ChargeGathers(k int) {
	lp.gsTime += float64(k) * lp.p.m.Cfg.GatherPerElem
	lp.gatherPasses += k
}

// ChargeScatters is ChargeGathers for masked indirect writes.
func (lp *Loop) ChargeScatters(k int) {
	lp.gsTime += float64(k) * lp.p.m.Cfg.ScatterPerElem
	lp.scatterPasses += k
}

// End charges the loop's cycles to the processor and invalidates the
// loop. The per-element rate is the chained maximum over units; the
// memory units (gather/scatter, loads, stores) are additionally
// scaled by the multiprocessor contention factor.
func (lp *Loop) End() {
	if lp.finished {
		panic("vm: Loop.End called twice")
	}
	lp.finished = true
	cfg := &lp.p.m.Cfg
	cont := cfg.ContentionFor(cfg.Procs)

	mem := lp.gsTime
	if lt := float64(lp.loads) * cfg.LoadPerElem / float64(cfg.LoadPorts); lt > mem {
		mem = lt
	}
	if st := float64(lp.stores) * cfg.StorePerElem; st > mem {
		mem = st
	}
	mem *= cont

	per := mem
	if at := float64(lp.alu) * cfg.ALUPerElem / float64(cfg.ALUPipes); at > per {
		per = at
	}
	if rt := float64(lp.rngOps) * cfg.RNGPerElem; rt > per {
		per = rt
	}
	if per < 1 && (lp.gsTime > 0 || lp.loads+lp.stores+lp.alu+lp.rngOps > 0) {
		per = 1 // nothing issues faster than one element per cycle
	}

	oh := cfg.LoopOverhead
	if lp.overhead >= 0 {
		oh = lp.overhead
	}
	lp.p.StallCycles += lp.stalls * cont
	lp.record()
	cycles := oh + per*float64(lp.n) + lp.stalls*cont
	if cfg.StripOverhead > 0 {
		strips := (lp.n + cfg.VectorLength - 1) / cfg.VectorLength
		cycles += cfg.StripOverhead * float64(strips)
	}
	lp.p.Cycles += cycles
}

// Pack compresses the elements of several parallel register sets,
// keeping element i iff keep[i], writing survivors contiguously to the
// front of each slice, and returns the survivor count. This is the
// load-balancing primitive of §3 (T_InitialPack, T_FinalPack): on the
// C90 it is a compress-index computation followed by one
// gather/scatter pass per state array, so its cost is dominated by
// len(arrays) gather-unit passes over n elements plus flag arithmetic.
func (p *Proc) Pack(n int, keep []bool, arrays ...[]int64) int {
	lp := p.Loop(n)
	// Flag evaluation and compress-index formation: compare + scan.
	lp.ALU(2)
	// One gather-unit pass per compressed state array.
	k := 0
	for i := 0; i < n; i++ {
		if keep[i] {
			for _, a := range arrays {
				a[k] = a[i]
			}
			k++
		}
	}
	lp.gsTime += float64(len(arrays)) * p.m.Cfg.GatherPerElem
	lp.gatherPasses += len(arrays)
	lp.End()
	return k
}

// PackInt32 is Pack for an int32 register set, compressed alongside by
// callers that mix widths.
func PackInt32(n int, keep []bool, arr []int32) int {
	k := 0
	for i := 0; i < n; i++ {
		if keep[i] {
			arr[k] = arr[i]
			k++
		}
	}
	return k
}
