package vm

import "fmt"

// OpStats counts the operations a processor (or machine) has issued,
// for calibration analysis: it lets tests and the experiment harness
// decompose a run's cycles into the unit demands behind them (how
// many gather passes, how many loop startups, how many strips) and
// check them against the paper's per-loop models, instead of only
// comparing end-to-end cycle totals.
type OpStats struct {
	// Loops is the number of vector loops executed (each paying its
	// startup overhead).
	Loops int64
	// Elems is the total number of loop elements across all loops
	// (the Σx of the paper's T(x) = a·x + b models).
	Elems int64
	// Strips is the number of 128-element strips processed.
	Strips int64
	// GatherElems and ScatterElems count elements moved through the
	// gather/scatter unit by indirect reads and writes (register-table
	// accesses included).
	GatherElems  int64
	ScatterElems int64
	// LoadElems and StoreElems count elements through the load and
	// store ports.
	LoadElems  int64
	StoreElems int64
	// ALUElems counts elements through the arithmetic pipes.
	ALUElems int64
	// RNGElems counts elements drawn from the vector RNG pipe.
	RNGElems int64
	// StallCycles is the bank-conflict stall total (also available as
	// Proc.StallCycles).
	StallCycles float64
}

// Add accumulates other into s.
func (s *OpStats) Add(other OpStats) {
	s.Loops += other.Loops
	s.Elems += other.Elems
	s.Strips += other.Strips
	s.GatherElems += other.GatherElems
	s.ScatterElems += other.ScatterElems
	s.LoadElems += other.LoadElems
	s.StoreElems += other.StoreElems
	s.ALUElems += other.ALUElems
	s.RNGElems += other.RNGElems
	s.StallCycles += other.StallCycles
}

// String renders the counts compactly.
func (s OpStats) String() string {
	return fmt.Sprintf("loops=%d elems=%d strips=%d gather=%d scatter=%d load=%d store=%d alu=%d rng=%d stalls=%.0f",
		s.Loops, s.Elems, s.Strips, s.GatherElems, s.ScatterElems,
		s.LoadElems, s.StoreElems, s.ALUElems, s.RNGElems, s.StallCycles)
}

// OpStats returns the operations this processor has issued since
// construction or the last ResetStats.
func (p *Proc) OpStats() OpStats { return p.ops }

// ResetStats zeroes the processor's operation counters (the cycle
// counters are separate; see Machine.ResetClocks).
func (p *Proc) ResetStats() { p.ops = OpStats{} }

// OpStats returns the sum of all processors' operation counters.
func (m *Machine) OpStats() OpStats {
	var s OpStats
	for _, p := range m.procs {
		s.Add(p.ops)
	}
	return s
}

// record accumulates a finished loop's operation counts into its
// processor. Called from Loop.End.
func (lp *Loop) record() {
	cfg := &lp.p.m.Cfg
	ops := &lp.p.ops
	ops.Loops++
	ops.Elems += int64(lp.n)
	ops.Strips += int64((lp.n + cfg.VectorLength - 1) / cfg.VectorLength)
	n := int64(lp.n)
	ops.GatherElems += int64(lp.gatherPasses) * n
	ops.ScatterElems += int64(lp.scatterPasses) * n
	ops.LoadElems += int64(lp.loads) * n
	ops.StoreElems += int64(lp.stores) * n
	ops.ALUElems += int64(lp.alu) * n
	ops.RNGElems += int64(lp.rngOps) * n
	ops.StallCycles += lp.stalls
}
