// Package vm simulates a Cray C90-class vector multiprocessor at the
// level of detail the paper's evaluation depends on: chained vector
// loops with per-functional-unit issue rates, a single gather/scatter
// port, banked memory with bank-busy stalls, per-loop startup
// overheads, strip-mining over vector registers of length 128, and
// memory-bandwidth contention between processors.
//
// Why a simulator: the paper's entire evaluation is expressed in Cray
// C90 clock cycles (4.2 ns) predicted and measured through per-loop
// linear models of the form T(x) = a·x + b (§3), under the Hockney
// vector-performance model T(n) = te(n + n_half) (§3, [16]). A machine
// model that executes the same vector loops and charges cycles with
// the same structure reproduces every cycle-level table and figure
// while leaving the algorithms free to behave dynamically. Absolute
// wall-clock on 2026 hardware is measured separately by the goroutine
// track; this package is the faithful substitute for the 1994 testbed.
//
// The execution model. Code runs as a sequence of vector loops on a
// processor. A loop over n active elements performs some set of
// vector operations; because the C90 chains operations through its
// functional units, the per-element time of the loop is the maximum
// over functional units of the time each unit spends per element —
// not the sum — except that operations sharing one unit serialize.
// The units modeled are:
//
//   - two load ports (unit-stride vector loads),
//   - one store port,
//   - one gather/scatter unit (indirect addressing; the C90 "can
//     perform only one gather or scatter operation at a time", §3),
//   - two arithmetic pipes, and
//   - a random-number pipe (for splitter selection).
//
// Every loop additionally pays a fixed startup overhead (the Hockney
// te·n_half term, dominated by loop setup and pipeline fill — this is
// what makes short vectors inefficient, §7), and optionally a
// per-strip overhead for each 128-element strip.
//
// Gathers and scatters run their address streams through a banked
// memory: element i of an indirect access issues at one element per
// unit cost but stalls until its bank has recovered from the previous
// access (BankBusy cycles). Random list layouts make systematic
// conflicts unlikely (§3: "since we are choosing random positions …
// systematic memory bank conflicts are unlikely"), but adversarial
// strides hit them hard, and tests exercise both.
//
// Multiprocessor runs give each processor its own cycle counter; the
// run's makespan is the maximum. Memory-unit costs are scaled by a
// contention factor that grows with the number of processors sharing
// the memory system, calibrated to the paper's measured multiprocessor
// asymptotes (§5, Fig. 3: "some degradation in performance as the
// number of processors increases, because the available memory
// bandwidth per processor decreases").
package vm

import (
	"fmt"
	"sort"
)

// Config describes a vector multiprocessor. All costs are in clock
// cycles per element unless stated otherwise.
type Config struct {
	// Name identifies the configuration in reports.
	Name string
	// ClockNS is the cycle time in nanoseconds (C90: 4.2).
	ClockNS float64
	// VectorLength is the hardware vector register length (C90: 128).
	VectorLength int
	// Procs is the number of physical processors participating in the
	// run; it selects the memory-contention factor.
	Procs int

	// GatherPerElem and ScatterPerElem are the per-element issue costs
	// on the single gather/scatter unit.
	GatherPerElem  float64
	ScatterPerElem float64
	// LoadPerElem is the per-element cost of a unit-stride load on one
	// of LoadPorts load ports.
	LoadPerElem float64
	LoadPorts   int
	// StorePerElem is the per-element cost on the store port.
	StorePerElem float64
	// ALUPerElem is the per-element cost of one arithmetic/logical
	// operation on one of ALUPipes pipes.
	ALUPerElem float64
	ALUPipes   int
	// RNGPerElem is the per-element cost of drawing a vector of
	// pseudo-random numbers (a short multiply/shift recurrence).
	RNGPerElem float64

	// LoopOverhead is the fixed startup cost of every vector loop
	// (Hockney te·n_half): instruction issue, address setup, pipeline
	// fill. The paper's measured per-loop constants (35, 28, …) are
	// of this kind.
	LoopOverhead float64
	// StripOverhead is an additional cost per 128-element strip. The
	// C90's measured loop models fold strip costs into the
	// per-element rate, so the default is 0; it exists for ablations.
	StripOverhead float64

	// NumBanks and BankBusy configure the banked-memory model for
	// indirect accesses. BankBusy is the bank recovery time in cycles.
	NumBanks int
	BankBusy float64

	// ScalarChase is the per-step cost of the scalar (non-vector)
	// pointer-chasing loop used by the serial algorithm and by serial
	// Phase 2: a dependent load-to-load latency. ScalarChaseValue is
	// the same with the value load added (list scan). Calibrated to
	// Table I's C90 serial column (177 and 183 ns/vertex).
	ScalarChase      float64
	ScalarChaseValue float64

	// Contention maps processor count to the factor by which memory
	// unit costs inflate when that many processors share the memory
	// system. Missing counts are interpolated between neighbors.
	// Calibrated to the paper's measured 1/2/4/8-processor asymptotes.
	Contention map[int]float64
}

// CrayC90 returns the calibrated Cray C90 configuration. The
// per-element costs reproduce the paper's measured loop models: the
// Phase 1 traversal (two gathers chained with adds and state updates)
// costs 2×1.7 = 3.4 cycles/element (T_InitialScan = 3.4x + 35) and the
// Phase 3 traversal (two gathers and a scatter) costs
// 2×1.7 + 1.2 = 4.6 (T_FinalScan = 4.6x + 28).
func CrayC90() Config {
	return Config{
		Name:             "CRAY C90",
		ClockNS:          4.2,
		VectorLength:     128,
		Procs:            1,
		GatherPerElem:    1.7,
		ScatterPerElem:   1.2,
		LoadPerElem:      1.0,
		LoadPorts:        2,
		StorePerElem:     1.0,
		ALUPipes:         2,
		ALUPerElem:       1.0,
		RNGPerElem:       8.0,
		LoopOverhead:     35,
		StripOverhead:    0,
		NumBanks:         1024,
		BankBusy:         4,
		ScalarChase:      42.1, // 177 ns / 4.2 ns per cycle
		ScalarChaseValue: 43.6, // 183 ns / 4.2
		Contention: map[int]float64{
			1:  1.00,
			2:  1.054, // 3.9 vs a perfect 3.7 cycles/vertex
			4:  1.081, // 2.0 vs 1.85
			8:  1.189, // 1.1 vs 0.925
			16: 1.45,  // extrapolated; the paper tuned only up to 8
		},
	}
}

// CrayYMP returns an estimated configuration for the C90's
// predecessor, the Cray Y-MP: 6.0 ns clock, vector length 64, one
// load port, half the memory banks, and a slower gather unit. The
// paper only measured the C90; this configuration exists for what-if
// comparisons (the C90 roughly doubled vector throughput per
// processor), and its absolute numbers are estimates, not
// calibrations.
func CrayYMP() Config {
	cfg := CrayC90()
	cfg.Name = "CRAY Y-MP"
	cfg.ClockNS = 6.0
	cfg.VectorLength = 64
	cfg.LoadPorts = 1
	cfg.GatherPerElem = 2.0
	cfg.ScatterPerElem = 1.5
	cfg.NumBanks = 256
	cfg.ScalarChase = 42.1 * 1.2
	cfg.ScalarChaseValue = 43.6 * 1.3
	return cfg
}

// ContentionFor returns the memory contention factor for p processors,
// linearly interpolating between configured points.
func (c *Config) ContentionFor(p int) float64 {
	if len(c.Contention) == 0 {
		return 1
	}
	if f, ok := c.Contention[p]; ok {
		return f
	}
	keys := make([]int, 0, len(c.Contention))
	for k := range c.Contention {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if p <= keys[0] {
		return c.Contention[keys[0]]
	}
	last := keys[len(keys)-1]
	if p >= last {
		// Extrapolate linearly from the last segment.
		if len(keys) == 1 {
			return c.Contention[last]
		}
		a, b := keys[len(keys)-2], last
		fa, fb := c.Contention[a], c.Contention[b]
		return fb + (fb-fa)/float64(b-a)*float64(p-b)
	}
	for i := 1; i < len(keys); i++ {
		if p < keys[i] {
			a, b := keys[i-1], keys[i]
			fa, fb := c.Contention[a], c.Contention[b]
			t := float64(p-a) / float64(b-a)
			return fa + t*(fb-fa)
		}
	}
	return 1
}

// Machine is a simulated vector multiprocessor with a shared memory.
type Machine struct {
	Cfg   Config
	Mem   []int64
	procs []*Proc
	brk   int64 // allocation high-water mark
}

// New returns a machine with the given configuration and memory size
// in 64-bit words.
func New(cfg Config, memWords int) *Machine {
	if cfg.VectorLength <= 0 {
		cfg.VectorLength = 128
	}
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	if cfg.LoadPorts < 1 {
		cfg.LoadPorts = 1
	}
	if cfg.ALUPipes < 1 {
		cfg.ALUPipes = 1
	}
	m := &Machine{
		Cfg: cfg,
		Mem: make([]int64, memWords),
	}
	m.procs = make([]*Proc, cfg.Procs)
	for i := range m.procs {
		m.procs[i] = &Proc{m: m, id: i}
		if cfg.NumBanks > 0 {
			m.procs[i].bankFree = make([]float64, cfg.NumBanks)
			m.procs[i].bankLast = make([]int64, cfg.NumBanks)
			for b := range m.procs[i].bankLast {
				m.procs[i].bankLast[b] = -1
			}
		}
	}
	return m
}

// Alloc reserves n words of machine memory and returns the base
// address. It panics if memory is exhausted; the simulator has no
// deallocator (runs are short-lived).
func (m *Machine) Alloc(n int) int64 {
	base := m.brk
	if base+int64(n) > int64(len(m.Mem)) {
		panic(fmt.Sprintf("vm: out of memory: need %d words at brk %d, have %d", n, base, len(m.Mem)))
	}
	m.brk += int64(n)
	return base
}

// Proc returns processor i.
func (m *Machine) Proc(i int) *Proc { return m.procs[i] }

// NumProcs returns the number of processors in the machine.
func (m *Machine) NumProcs() int { return len(m.procs) }

// Makespan returns the maximum cycle count over all processors — the
// parallel completion time.
func (m *Machine) Makespan() float64 {
	max := 0.0
	for _, p := range m.procs {
		if p.Cycles > max {
			max = p.Cycles
		}
	}
	return max
}

// TotalCycles returns the sum of cycles over all processors (the work).
func (m *Machine) TotalCycles() float64 {
	sum := 0.0
	for _, p := range m.procs {
		sum += p.Cycles
	}
	return sum
}

// Nanoseconds converts the makespan to nanoseconds.
func (m *Machine) Nanoseconds() float64 {
	return m.Makespan() * m.Cfg.ClockNS
}

// ResetClocks zeroes every processor's cycle counter and bank state
// without touching memory, so a warmed-up data layout can be re-timed.
func (m *Machine) ResetClocks() {
	for _, p := range m.procs {
		p.Cycles = 0
		p.issued = 0
		p.StallCycles = 0
		for i := range p.bankFree {
			p.bankFree[i] = 0
			p.bankLast[i] = -1
		}
	}
}

// SyncProcs advances every processor's clock to the current makespan —
// a barrier. The paper's multiprocessor implementation synchronizes
// only a constant number of times (§5); each call corresponds to one
// such synchronization point.
func (m *Machine) SyncProcs() {
	mk := m.Makespan()
	for _, p := range m.procs {
		p.Cycles = mk
	}
}

// Proc is one vector processor: a cycle counter plus private
// bank-recovery state (an approximation: real banks are shared, but
// interleaving timestamp streams across simulated processors would
// impose an ordering real hardware does not have; contention between
// processors is instead modeled by the Contention factor).
type Proc struct {
	m      *Machine
	id     int
	Cycles float64
	// issued counts elements issued on the gather/scatter unit since
	// the processor started, for bank accounting.
	issued   float64
	bankFree []float64
	bankLast []int64
	// StallCycles accumulates bank-conflict stall cycles charged to
	// this processor, for calibration analysis.
	StallCycles float64
	// ops counts issued operations; see OpStats.
	ops OpStats
}

// ID returns the processor index.
func (p *Proc) ID() int { return p.id }

// Machine returns the owning machine.
func (p *Proc) Machine() *Machine { return p.m }

// ScalarCycles charges c cycles of scalar (non-vector) work: loop
// bookkeeping, short serial sections, tasking overhead.
func (p *Proc) ScalarCycles(c float64) { p.Cycles += c }

// ScalarChase charges n iterations of the dependent pointer-chasing
// loop (serial list ranking). withValue selects the list-scan variant
// that also loads the value word.
func (p *Proc) ScalarChase(n int, withValue bool) {
	c := p.m.Cfg.ScalarChase
	if withValue {
		c = p.m.Cfg.ScalarChaseValue
	}
	p.Cycles += c * float64(n)
}
