package vm

import (
	"math"
	"testing"

	"listrank/internal/rng"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol*want {
		t.Errorf("%s = %.3f, want %.3f (±%.0f%%)", what, got, want, tol*100)
	}
}

func TestAllocAndMemory(t *testing.T) {
	m := New(CrayC90(), 1000)
	a := m.Alloc(100)
	b := m.Alloc(200)
	if a != 0 || b != 100 {
		t.Fatalf("Alloc returned %d, %d", a, b)
	}
	m.Mem[a] = 7
	m.Mem[b+199] = 9
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation did not panic")
		}
	}()
	m.Alloc(701)
}

func TestGatherScatterRoundTrip(t *testing.T) {
	m := New(CrayC90(), 4096)
	base := m.Alloc(1024)
	p := m.Proc(0)
	n := 300
	idx := make([]int64, n)
	src := make([]int64, n)
	dst := make([]int64, n)
	r := rng.New(1)
	perm := r.Perm(1024)
	for i := 0; i < n; i++ {
		idx[i] = int64(perm[i])
		src[i] = int64(i * 31)
	}
	lp := p.Loop(n)
	lp.Scatter(base, idx, src)
	lp.Gather(dst, base, idx)
	lp.End()
	for i := 0; i < n; i++ {
		if dst[i] != src[i] {
			t.Fatalf("round trip failed at %d: %d != %d", i, dst[i], src[i])
		}
	}
	if p.Cycles <= 0 {
		t.Fatal("no cycles charged")
	}
}

// TestInitialScanLoopModel verifies the paper's dominant Phase 1 loop
// equation: T_InitialScan(x) = 3.4x + 35 cycles for a loop with two
// gathers over x active sublists (§3).
func TestInitialScanLoopModel(t *testing.T) {
	cfg := CrayC90()
	cfg.BankBusy = 0 // pure issue-rate model for the equation check
	for _, x := range []int{10, 100, 1000, 10000} {
		m := New(cfg, 4*x+64)
		base := m.Alloc(2 * x)
		p := m.Proc(0)
		idx := make([]int64, x)
		sum := make([]int64, x)
		tmp := make([]int64, x)
		for i := range idx {
			idx[i] = int64(i)
		}
		lp := p.Loop(x)
		lp.Gather(tmp, base, idx) // gather value
		lp.Add(sum, sum, tmp)     // accumulate (chained)
		lp.Gather(idx, base, idx) // gather successor link
		lp.End()
		want := 3.4*float64(x) + 35
		approx(t, p.Cycles, want, 0.01, "T_InitialScan")
	}
}

// TestFinalScanLoopModel verifies T_FinalScan(x) = 4.6x + 28: two
// gathers plus a scatter (§3).
func TestFinalScanLoopModel(t *testing.T) {
	cfg := CrayC90()
	cfg.BankBusy = 0
	cfg.LoopOverhead = 28
	x := 5000
	m := New(cfg, 4*x)
	base := m.Alloc(2 * x)
	p := m.Proc(0)
	idx := make([]int64, x)
	acc := make([]int64, x)
	tmp := make([]int64, x)
	for i := range idx {
		idx[i] = int64(i)
	}
	lp := p.Loop(x)
	lp.Scatter(base, idx, acc)
	lp.Gather(tmp, base, idx)
	lp.Add(acc, acc, tmp)
	lp.Gather(idx, base, idx)
	lp.End()
	approx(t, p.Cycles, 4.6*float64(x)+28, 0.01, "T_FinalScan")
}

// TestPackModel verifies the pack primitive's per-element cost is near
// the paper's T_InitialPack slope of 8.2 cycles/element when packing
// the five Phase 1 state arrays (we get 5×1.7 = 8.5, within 5%).
func TestPackModel(t *testing.T) {
	cfg := CrayC90()
	cfg.BankBusy = 0
	cfg.LoopOverhead = 0
	x := 10000
	m := New(cfg, 16)
	p := m.Proc(0)
	keep := make([]bool, x)
	arrays := make([][]int64, 5)
	for i := range arrays {
		arrays[i] = make([]int64, x)
		for j := range arrays[i] {
			arrays[i][j] = int64(j*10 + i)
		}
	}
	for i := range keep {
		keep[i] = i%3 != 0
	}
	k := p.Pack(x, keep, arrays...)
	wantK := 0
	for _, b := range keep {
		if b {
			wantK++
		}
	}
	if k != wantK {
		t.Fatalf("Pack kept %d, want %d", k, wantK)
	}
	// Survivors must be the kept elements in order, consistently
	// across all arrays.
	j := 0
	for i := 0; i < x; i++ {
		if keep[i] {
			for ai, a := range arrays {
				if a[j] != int64(i*10+ai) {
					t.Fatalf("array %d slot %d = %d, want %d", ai, j, a[j], i*10+ai)
				}
			}
			j++
		}
	}
	approx(t, p.Cycles/float64(x), 8.5, 0.02, "pack cycles/elem")
}

func TestChainingTakesMax(t *testing.T) {
	// A loop with one gather and ten ALU ops: ALU (10 × 1.0/2 = 5.0)
	// must dominate the gather (1.7).
	cfg := CrayC90()
	cfg.BankBusy = 0
	cfg.LoopOverhead = 0
	m := New(cfg, 2048)
	base := m.Alloc(1024)
	p := m.Proc(0)
	n := 1000
	idx := make([]int64, n)
	dst := make([]int64, n)
	lp := p.Loop(n)
	lp.Gather(dst, base, idx)
	lp.ALU(10)
	lp.End()
	approx(t, p.Cycles, 5.0*float64(n), 0.01, "chained max")
}

func TestShortVectorOverheadDominates(t *testing.T) {
	// The Hockney constant must dominate for tiny vectors: a loop of 4
	// elements costs nearly the full LoopOverhead.
	m := New(CrayC90(), 64)
	p := m.Proc(0)
	lp := p.Loop(4)
	lp.ALU(1)
	lp.End()
	if p.Cycles < 35 || p.Cycles > 45 {
		t.Errorf("4-element loop cost %.1f, want ≈ 35–45", p.Cycles)
	}
}

func TestBankConflictsAdversarial(t *testing.T) {
	// All gathers hitting one bank must stall massively compared to a
	// conflict-free stride.
	cfg := CrayC90()
	n := 2000
	mSame := New(cfg, cfg.NumBanks*8)
	pSame := mSame.Proc(0)
	idxSame := make([]int64, n)
	for i := range idxSame {
		idxSame[i] = int64(i) * int64(cfg.NumBanks) % int64(len(mSame.Mem))
	}
	dst := make([]int64, n)
	lp := pSame.Loop(n)
	lp.Gather(dst, 0, idxSame)
	lp.End()

	mSeq := New(cfg, cfg.NumBanks*8)
	pSeq := mSeq.Proc(0)
	idxSeq := make([]int64, n)
	for i := range idxSeq {
		idxSeq[i] = int64(i)
	}
	lp = pSeq.Loop(n)
	lp.Gather(dst, 0, idxSeq)
	lp.End()

	if pSame.Cycles < 2*pSeq.Cycles {
		t.Errorf("same-bank gather %.0f not ≫ sequential %.0f", pSame.Cycles, pSeq.Cycles)
	}
}

func TestBankConflictsRandomAreRare(t *testing.T) {
	// Random addresses over 1024 banks: stalls should inflate the
	// gather by only a few percent (§3's justification for not
	// managing banks explicitly).
	cfg := CrayC90()
	n := 100000
	m := New(cfg, n)
	p := m.Proc(0)
	r := rng.New(7)
	idx := make([]int64, n)
	perm := r.Perm(n)
	for i := range idx {
		idx[i] = int64(perm[i])
	}
	dst := make([]int64, n)
	lp := p.Loop(n)
	lp.Gather(dst, 0, idx)
	lp.End()
	pure := cfg.GatherPerElem*float64(n) + cfg.LoopOverhead
	if p.Cycles > pure*1.15 {
		t.Errorf("random gather cost %.0f vs conflict-free %.0f: stalls too large", p.Cycles, pure)
	}
}

func TestContentionInterpolation(t *testing.T) {
	cfg := CrayC90()
	if f := cfg.ContentionFor(1); f != 1.0 {
		t.Errorf("ContentionFor(1) = %v", f)
	}
	f3 := cfg.ContentionFor(3)
	if f3 <= cfg.ContentionFor(2) || f3 >= cfg.ContentionFor(4) {
		t.Errorf("ContentionFor(3) = %v not between 2 and 4 values", f3)
	}
	f32 := cfg.ContentionFor(32)
	if f32 <= cfg.ContentionFor(16) {
		t.Errorf("extrapolated ContentionFor(32) = %v not above 16's", f32)
	}
}

func TestMultiprocMakespanAndSync(t *testing.T) {
	cfg := CrayC90()
	cfg.Procs = 4
	m := New(cfg, 1024)
	for i := 0; i < 4; i++ {
		m.Proc(i).ScalarCycles(float64(100 * (i + 1)))
	}
	if got := m.Makespan(); got != 400 {
		t.Errorf("Makespan = %v, want 400", got)
	}
	if got := m.TotalCycles(); got != 1000 {
		t.Errorf("TotalCycles = %v, want 1000", got)
	}
	m.SyncProcs()
	for i := 0; i < 4; i++ {
		if m.Proc(i).Cycles != 400 {
			t.Errorf("proc %d not synced: %v", i, m.Proc(i).Cycles)
		}
	}
}

func TestContentionScalesMemoryNotALU(t *testing.T) {
	cfg := CrayC90()
	cfg.BankBusy = 0
	cfg.LoopOverhead = 0
	n := 10000

	run := func(procs int, aluOnly bool) float64 {
		c := cfg
		c.Procs = procs
		m := New(c, n+64)
		base := m.Alloc(n)
		p := m.Proc(0)
		idx := make([]int64, n)
		dst := make([]int64, n)
		lp := p.Loop(n)
		if aluOnly {
			lp.ALU(4)
		} else {
			lp.Gather(dst, base, idx)
		}
		lp.End()
		return p.Cycles
	}
	if g1, g8 := run(1, false), run(8, false); g8 <= g1 {
		t.Errorf("gather under contention %v not above solo %v", g8, g1)
	}
	if a1, a8 := run(1, true), run(8, true); a8 != a1 {
		t.Errorf("ALU-only loop affected by contention: %v vs %v", a8, a1)
	}
}

func TestScalarChaseCalibration(t *testing.T) {
	// Table I: C90 serial list rank = 177 ns/vertex, scan = 183.
	cfg := CrayC90()
	m := New(cfg, 16)
	p := m.Proc(0)
	p.ScalarChase(1000, false)
	approx(t, p.Cycles*cfg.ClockNS/1000, 177, 0.01, "serial rank ns/vertex")
	m.ResetClocks()
	p.ScalarChase(1000, true)
	approx(t, p.Cycles*cfg.ClockNS/1000, 183, 0.01, "serial scan ns/vertex")
}

func TestResetClocks(t *testing.T) {
	m := New(CrayC90(), 1024)
	p := m.Proc(0)
	idx := make([]int64, 10)
	dst := make([]int64, 10)
	lp := p.Loop(10)
	lp.Gather(dst, 0, idx)
	lp.End()
	if p.Cycles == 0 {
		t.Fatal("no cycles before reset")
	}
	m.ResetClocks()
	if p.Cycles != 0 || p.issued != 0 {
		t.Fatal("ResetClocks did not zero state")
	}
}

func TestLoopEndTwicePanics(t *testing.T) {
	m := New(CrayC90(), 64)
	lp := m.Proc(0).Loop(1)
	lp.ALU(1)
	lp.End()
	defer func() {
		if recover() == nil {
			t.Fatal("second End did not panic")
		}
	}()
	lp.End()
}

func TestStrideLoadStoreRoundTrip(t *testing.T) {
	m := New(CrayC90(), 1024)
	base := m.Alloc(512)
	p := m.Proc(0)
	n := 100
	src := make([]int64, n)
	dst := make([]int64, n)
	for i := range src {
		src[i] = int64(i) * 3
	}
	lp := p.Loop(n)
	lp.StoreStride(base, src)
	lp.LoadStride(dst, base)
	lp.End()
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("stride round trip failed at %d", i)
		}
	}
}

func TestIotaConstAddRandom(t *testing.T) {
	m := New(CrayC90(), 64)
	p := m.Proc(0)
	n := 50
	a := make([]int64, n)
	b := make([]int64, n)
	c := make([]int64, n)
	lp := p.Loop(n)
	lp.Iota(a, 5)
	lp.Const(b, 3)
	lp.Add(c, a, b)
	lp.AddConst(c, c, -3)
	lp.End()
	for i := 0; i < n; i++ {
		if c[i] != int64(5+i) {
			t.Fatalf("alu chain wrong at %d: %d", i, c[i])
		}
	}
	r := rng.New(2)
	lp = p.Loop(n)
	lp.Random(a, r, 10)
	lp.End()
	for i := 0; i < n; i++ {
		if a[i] < 0 || a[i] >= 10 {
			t.Fatalf("Random out of range: %d", a[i])
		}
	}
}

func TestCrayYMPSlower(t *testing.T) {
	// The Y-MP estimate must be strictly slower than the C90 for the
	// same gather-bound loop, in both cycles and (with its slower
	// clock) nanoseconds.
	n := 10000
	run := func(cfg Config) (float64, float64) {
		m := New(cfg, n+64)
		base := m.Alloc(n)
		p := m.Proc(0)
		idx := make([]int64, n)
		dst := make([]int64, n)
		for i := range idx {
			idx[i] = int64((i * 37) % n)
		}
		lp := p.Loop(n)
		lp.Gather(dst, base, idx)
		lp.Gather(idx, base, idx)
		lp.End()
		return m.Makespan(), m.Nanoseconds()
	}
	c90cy, c90ns := run(CrayC90())
	ympcy, ympns := run(CrayYMP())
	if ympcy <= c90cy || ympns <= c90ns {
		t.Errorf("Y-MP (%f cy, %f ns) not slower than C90 (%f cy, %f ns)",
			ympcy, ympns, c90cy, c90ns)
	}
}

func TestStripOverheadAblation(t *testing.T) {
	cfg := CrayC90()
	cfg.BankBusy = 0
	cfg.StripOverhead = 10
	cfg.LoopOverhead = 0
	n := 1000 // 8 strips of 128
	m := New(cfg, 16)
	p := m.Proc(0)
	lp := p.Loop(n)
	lp.ALU(1)
	lp.End()
	// cost = per-elem (0.5 clamped to the 1-per-cycle issue floor) *
	// 1000 + ceil(1000/128)=8 strips * 10.
	want := 1.0*1000 + 8*10
	approx(t, p.Cycles, want, 0.01, "strip overhead")
}

func TestLoopOpAndChargePrimitives(t *testing.T) {
	cfg := CrayC90()
	cfg.BankBusy = 0
	cfg.LoopOverhead = 0
	m := New(cfg, 64)
	p := m.Proc(0)
	n := 100
	a := make([]int64, n)
	bv := make([]int64, n)
	dst := make([]int64, n)
	for i := range a {
		a[i] = int64(i)
		bv[i] = int64(2 * i)
	}
	lp := p.Loop(n)
	lp.Op(dst, a, bv, func(x, y int64) int64 { return y - x })
	lp.End()
	for i := range dst {
		if dst[i] != int64(i) {
			t.Fatalf("Op result wrong at %d", i)
		}
	}
	// One ALU op on 2 pipes = 0.5/elem but clamped to >= 1.
	approx(t, p.Cycles, 100, 0.01, "Op cost")

	m.ResetClocks()
	lp = p.Loop(n)
	lp.ChargeGathers(2)
	lp.ChargeScatters(1)
	lp.End()
	approx(t, p.Cycles, (2*1.7+1.2)*100, 0.01, "masked charges")
}

func TestGatherRegScatterRegRoundTrip(t *testing.T) {
	m := New(CrayC90(), 64)
	p := m.Proc(0)
	n := 50
	table := make([]int64, 100)
	idx := make([]int64, n)
	src := make([]int64, n)
	dst := make([]int64, n)
	for i := 0; i < n; i++ {
		idx[i] = int64((i * 7) % 100)
		src[i] = int64(i + 1000)
	}
	// Ensure idx distinct for round-trip (7 coprime to 100).
	lp := p.Loop(n)
	lp.ScatterReg(table, idx, src)
	lp.GatherReg(dst, table, idx)
	lp.End()
	for i := 0; i < n; i++ {
		if dst[i] != src[i] {
			t.Fatalf("reg round trip failed at %d", i)
		}
	}
	if p.Cycles < (1.7+1.2)*float64(n) {
		t.Error("reg ops undercharged")
	}
}

func TestStallCyclesAccumulate(t *testing.T) {
	cfg := CrayC90()
	n := 500
	m := New(cfg, cfg.NumBanks*4)
	p := m.Proc(0)
	idx := make([]int64, n)
	for i := range idx {
		idx[i] = int64(i*cfg.NumBanks) % int64(len(m.Mem))
	}
	dst := make([]int64, n)
	lp := p.Loop(n)
	lp.Gather(dst, 0, idx)
	lp.End()
	if p.StallCycles <= 0 {
		t.Error("same-bank stride produced no recorded stalls")
	}
	m.ResetClocks()
	if p.StallCycles != 0 {
		t.Error("ResetClocks did not clear StallCycles")
	}
}
