package vm

import (
	"strings"
	"testing"

	"listrank/internal/rng"
)

func statsMachine() *Machine {
	cfg := CrayC90()
	return New(cfg, 1<<16)
}

func TestOpStatsCountsPasses(t *testing.T) {
	m := statsMachine()
	p := m.Proc(0)
	n := 300
	base := m.Alloc(n)
	idx := make([]int64, n)
	buf := make([]int64, n)
	for i := range idx {
		idx[i] = int64(i)
	}
	lp := p.Loop(n)
	lp.Gather(buf, base, idx)
	lp.Gather(buf, base, idx)
	lp.Scatter(base, idx, buf)
	lp.Add(buf, buf, buf)
	lp.Load(buf, idx)
	lp.Store(buf, idx)
	lp.End()

	st := p.OpStats()
	if st.Loops != 1 {
		t.Errorf("Loops = %d, want 1", st.Loops)
	}
	if st.Elems != int64(n) {
		t.Errorf("Elems = %d, want %d", st.Elems, n)
	}
	wantStrips := int64((n + 127) / 128)
	if st.Strips != wantStrips {
		t.Errorf("Strips = %d, want %d", st.Strips, wantStrips)
	}
	if st.GatherElems != int64(2*n) {
		t.Errorf("GatherElems = %d, want %d", st.GatherElems, 2*n)
	}
	if st.ScatterElems != int64(n) {
		t.Errorf("ScatterElems = %d, want %d", st.ScatterElems, n)
	}
	if st.LoadElems != int64(n) || st.StoreElems != int64(n) {
		t.Errorf("Load/Store = %d/%d, want %d/%d", st.LoadElems, st.StoreElems, n, n)
	}
	if st.ALUElems != int64(n) {
		t.Errorf("ALUElems = %d, want %d", st.ALUElems, n)
	}
}

func TestOpStatsPackAndCharges(t *testing.T) {
	m := statsMachine()
	p := m.Proc(0)
	n := 64
	a := make([]int64, n)
	b := make([]int64, n)
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = i%2 == 0
	}
	p.Pack(n, keep, a, b)
	st := p.OpStats()
	if st.GatherElems != int64(2*n) {
		t.Errorf("Pack GatherElems = %d, want %d (one pass per array)", st.GatherElems, 2*n)
	}

	p.ResetStats()
	lp := p.Loop(n)
	lp.ChargeGathers(3)
	lp.ChargeScatters(2)
	lp.End()
	st = p.OpStats()
	if st.GatherElems != int64(3*n) || st.ScatterElems != int64(2*n) {
		t.Errorf("charged passes = %d/%d, want %d/%d", st.GatherElems, st.ScatterElems, 3*n, 2*n)
	}
}

func TestOpStatsRNGAndReset(t *testing.T) {
	m := statsMachine()
	p := m.Proc(0)
	buf := make([]int64, 100)
	lp := p.Loop(100)
	lp.Random(buf, rng.New(1), 1000)
	lp.End()
	if st := p.OpStats(); st.RNGElems != 100 {
		t.Errorf("RNGElems = %d, want 100", st.RNGElems)
	}
	p.ResetStats()
	if st := p.OpStats(); st != (OpStats{}) {
		t.Errorf("after reset: %+v", st)
	}
}

func TestOpStatsMachineAggregation(t *testing.T) {
	cfg := CrayC90()
	cfg.Procs = 4
	m := New(cfg, 1<<14)
	for pc := 0; pc < 4; pc++ {
		buf := make([]int64, 10)
		lp := m.Proc(pc).Loop(10)
		lp.Add(buf, buf, buf)
		lp.End()
	}
	st := m.OpStats()
	if st.Loops != 4 || st.ALUElems != 40 {
		t.Errorf("aggregate = %+v, want 4 loops / 40 alu elems", st)
	}
}

func TestOpStatsStallsMatchProc(t *testing.T) {
	cfg := CrayC90()
	cfg.NumBanks = 4 // force conflicts
	m := New(cfg, 1<<14)
	p := m.Proc(0)
	n := 256
	base := m.Alloc(n * 4)
	idx := make([]int64, n)
	for i := range idx {
		idx[i] = int64(i * 4) // same-bank stride
	}
	buf := make([]int64, n)
	lp := p.Loop(n)
	lp.Gather(buf, base, idx)
	lp.End()
	st := p.OpStats()
	if st.StallCycles <= 0 {
		t.Fatal("no stalls recorded on an adversarial stride")
	}
	// OpStats stalls are pre-contention; with 1 processor the factor
	// is 1 and they must equal the processor's charged stalls.
	if st.StallCycles != p.StallCycles {
		t.Errorf("OpStats stalls %.1f != proc stalls %.1f", st.StallCycles, p.StallCycles)
	}
}

func TestOpStatsString(t *testing.T) {
	s := OpStats{Loops: 2, Elems: 10}.String()
	if !strings.Contains(s, "loops=2") || !strings.Contains(s, "elems=10") {
		t.Errorf("String() = %q", s)
	}
}
