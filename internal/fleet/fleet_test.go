package fleet

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBinsRouting(t *testing.T) {
	b := NewBins([]int{10, 100})
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	cases := []struct{ n, bin int }{
		{0, 0}, {1, 0}, {10, 0}, {11, 1}, {100, 1}, {101, 2}, {1 << 30, 2},
	}
	for _, c := range cases {
		if got := b.Index(c.n); got != c.bin {
			t.Errorf("Index(%d) = %d, want %d", c.n, got, c.bin)
		}
	}
	if b.Bound(0) != 10 || b.Bound(1) != 100 || b.Bound(2) != -1 {
		t.Errorf("Bound = %d,%d,%d, want 10,100,-1", b.Bound(0), b.Bound(1), b.Bound(2))
	}
	// Zero value: one unbounded bin.
	var z Bins
	if z.Count() != 1 || z.Index(12345) != 0 {
		t.Errorf("zero Bins: Count=%d Index=%d", z.Count(), z.Index(12345))
	}
}

func TestBinsValidation(t *testing.T) {
	for _, bad := range [][]int{{0}, {-1}, {5, 5}, {10, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBins(%v) did not panic", bad)
				}
			}()
			NewBins(bad)
		}()
	}
}

func TestQueueFIFOAndBatch(t *testing.T) {
	q := NewQueue[int](8, Block)
	for i := 0; i < 5; i++ {
		if err := q.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]int, 3)
	n, ok := q.TakeBatch(dst)
	if !ok || n != 3 || dst[0] != 0 || dst[1] != 1 || dst[2] != 2 {
		t.Fatalf("TakeBatch = %v %v %v", n, ok, dst)
	}
	n, ok = q.TakeBatch(dst)
	if !ok || n != 2 || dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("second TakeBatch = %v %v %v", n, ok, dst[:n])
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}

func TestQueueRejectPolicy(t *testing.T) {
	q := NewQueue[int](2, Reject)
	if err := q.Put(1); err != nil {
		t.Fatal(err)
	}
	if err := q.Put(2); err != nil {
		t.Fatal(err)
	}
	if err := q.Put(3); !errors.Is(err, ErrRejected) {
		t.Fatalf("Put on full queue: %v, want ErrRejected", err)
	}
	dst := make([]int, 4)
	if n, ok := q.TakeBatch(dst); !ok || n != 2 {
		t.Fatalf("TakeBatch = %d %v", n, ok)
	}
	if err := q.Put(4); err != nil {
		t.Fatalf("Put after drain: %v", err)
	}
}

// TestQueueBlockPolicy: a Put on a full Block queue parks until the
// consumer frees a slot; the admitted order is preserved.
func TestQueueBlockPolicy(t *testing.T) {
	q := NewQueue[int](1, Block)
	if err := q.Put(1); err != nil {
		t.Fatal(err)
	}
	var unblocked atomic.Bool
	done := make(chan error)
	go func() {
		err := q.Put(2) // must block: capacity 1, occupied
		unblocked.Store(true)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if unblocked.Load() {
		t.Fatal("Put returned before the consumer made space")
	}
	dst := make([]int, 1)
	if n, ok := q.TakeBatch(dst); !ok || n != 1 || dst[0] != 1 {
		t.Fatalf("TakeBatch = %d %v %v", n, ok, dst)
	}
	if err := <-done; err != nil {
		t.Fatalf("blocked Put: %v", err)
	}
	if n, ok := q.TakeBatch(dst); !ok || n != 1 || dst[0] != 2 {
		t.Fatalf("TakeBatch = %d %v %v", n, ok, dst)
	}
}

// TestQueueCloseDrains: Close fails later and blocked Puts, but
// everything admitted first is still drained, and only then does
// TakeBatch report exhaustion.
func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue[int](4, Block)
	for i := 0; i < 3; i++ {
		if err := q.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	q.Close() // idempotent
	if err := q.Put(99); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	dst := make([]int, 2)
	n, ok := q.TakeBatch(dst)
	if !ok || n != 2 || dst[0] != 0 || dst[1] != 1 {
		t.Fatalf("drain 1: %d %v %v", n, ok, dst)
	}
	n, ok = q.TakeBatch(dst)
	if !ok || n != 1 || dst[0] != 2 {
		t.Fatalf("drain 2: %d %v %v", n, ok, dst[:n])
	}
	if n, ok = q.TakeBatch(dst); ok || n != 0 {
		t.Fatalf("exhausted queue: %d %v, want 0 false", n, ok)
	}
}

// TestQueueCloseWakesBlockedPut: a producer parked on a full Block
// queue must wake and fail when the queue closes underneath it.
func TestQueueCloseWakesBlockedPut(t *testing.T) {
	q := NewQueue[int](1, Block)
	if err := q.Put(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	go func() { done <- q.Put(2) }()
	time.Sleep(5 * time.Millisecond)
	q.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked Put after Close: %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Put did not wake on Close")
	}
}

// TestQueueConcurrentProducers hammers one consumer with many
// producers; every item must arrive exactly once.
func TestQueueConcurrentProducers(t *testing.T) {
	const producers, perProducer = 8, 500
	q := NewQueue[int](16, Block)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Put(p*perProducer + i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(p)
	}
	go func() { wg.Wait(); q.Close() }()
	seen := make([]bool, producers*perProducer)
	dst := make([]int, 32)
	total := 0
	for {
		n, ok := q.TakeBatch(dst)
		if !ok {
			break
		}
		for _, x := range dst[:n] {
			if seen[x] {
				t.Fatalf("item %d delivered twice", x)
			}
			seen[x] = true
		}
		total += n
	}
	if total != producers*perProducer {
		t.Fatalf("delivered %d items, want %d", total, producers*perProducer)
	}
}

// TestQueueSteadyStateZeroAlloc: a warm Put/TakeBatch cycle allocates
// nothing — the admission half of the serving layer's contract.
func TestQueueSteadyStateZeroAlloc(t *testing.T) {
	q := NewQueue[*int](8, Block)
	x := new(int)
	dst := make([]*int, 8)
	cycle := func() {
		for i := 0; i < 4; i++ {
			if err := q.Put(x); err != nil {
				t.Fatal(err)
			}
		}
		if n, ok := q.TakeBatch(dst); !ok || n != 4 {
			t.Fatalf("TakeBatch = %d %v", n, ok)
		}
	}
	cycle()
	if allocs := testing.AllocsPerRun(10, cycle); allocs != 0 {
		t.Errorf("queue cycle: %v allocs/op, want 0", allocs)
	}
}

func TestFreeListRecycles(t *testing.T) {
	made := 0
	f := FreeList[*int]{New: func() *int { made++; return new(int) }}
	a := f.Get()
	f.Put(a)
	b := f.Get()
	if a != b {
		t.Error("FreeList did not recycle the returned item")
	}
	if made != 1 {
		t.Errorf("constructed %d items, want 1", made)
	}
	// Warm Put/Get cycles allocate nothing.
	f.Put(b)
	cycle := func() { f.Put(f.Get()) }
	if allocs := testing.AllocsPerRun(10, cycle); allocs != 0 {
		t.Errorf("freelist cycle: %v allocs/op, want 0", allocs)
	}
}

// TestPoolBinsSeparate: checkouts at different sizes draw from
// different bins, so a small problem never sees an arena warmed on a
// big one.
func TestPoolBinsSeparate(t *testing.T) {
	type engine struct{ warmedFor int }
	p := NewPool([]int{100}, func() *engine { return &engine{} })
	big := p.Checkout(1000)
	big.warmedFor = 1000
	p.Checkin(1000, big)
	small := p.Checkout(10)
	if small.warmedFor != 0 {
		t.Error("small checkout returned the big-bin engine")
	}
	p.Checkin(10, small)
	if again := p.Checkout(500); again != big {
		t.Error("big checkout did not recycle the big-bin engine")
	}
}

func TestPoolDefaultBounds(t *testing.T) {
	p := NewPool(nil, func() *int { return new(int) })
	if got, want := p.Bins().Count(), len(DefaultBinBounds)+1; got != want {
		t.Fatalf("default bins: %d, want %d", got, want)
	}
}

// TestPoolConcurrentCheckout: concurrent checkout/checkin from many
// goroutines must never hand the same resource to two holders at
// once.
func TestPoolConcurrentCheckout(t *testing.T) {
	type engine struct{ inUse atomic.Bool }
	p := NewPool([]int{64}, func() *engine { return &engine{} })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 10 + (g+i)%100
				e := p.Checkout(n)
				if e.inUse.Swap(true) {
					t.Errorf("engine handed out twice concurrently")
					return
				}
				e.inUse.Store(false)
				p.Checkin(n, e)
			}
		}(g)
	}
	wg.Wait()
}
