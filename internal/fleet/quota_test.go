package fleet

import (
	"testing"
	"time"
)

func TestTokenBucketBurstThenRefill(t *testing.T) {
	t0 := time.Unix(1000, 0)
	tb := NewTokenBucket(10, 3) // 10 tokens/s, burst 3

	// The burst admits immediately; the fourth request is rejected.
	for i := 0; i < 3; i++ {
		if !tb.Allow(t0) {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	if tb.Allow(t0) {
		t.Fatal("request past the burst admitted")
	}

	// 100ms refills exactly one token at 10/s.
	t1 := t0.Add(100 * time.Millisecond)
	if !tb.Allow(t1) {
		t.Fatal("refilled token rejected")
	}
	if tb.Allow(t1) {
		t.Fatal("second request after one-token refill admitted")
	}

	// A long idle refills to burst, not beyond.
	t2 := t1.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !tb.Allow(t2) {
			t.Fatalf("post-idle request %d rejected", i)
		}
	}
	if tb.Allow(t2) {
		t.Fatal("bucket refilled past burst")
	}
}

func TestTokenBucketUnlimitedAndClamps(t *testing.T) {
	tb := NewTokenBucket(0, 0) // rate <= 0: unlimited
	now := time.Unix(1, 0)
	for i := 0; i < 1000; i++ {
		if !tb.Allow(now) {
			t.Fatal("unlimited bucket rejected")
		}
	}

	tb = NewTokenBucket(5, 0) // burst clamps to 1
	if !tb.Allow(now) {
		t.Fatal("clamped bucket rejected its single burst token")
	}
	if tb.Allow(now) {
		t.Fatal("clamped bucket admitted past burst 1")
	}

	// Time flowing backwards neither refills nor panics.
	if tb.Allow(now.Add(-time.Hour)) {
		t.Fatal("backwards time refilled the bucket")
	}
}

func TestTokenBucketAllowZeroAlloc(t *testing.T) {
	tb := NewTokenBucket(1e9, 64)
	now := time.Unix(2000, 0)
	allocs := testing.AllocsPerRun(100, func() {
		now = now.Add(time.Microsecond)
		tb.Allow(now)
	})
	if allocs != 0 {
		t.Errorf("Allow: %.1f allocs/op, want 0", allocs)
	}
}
