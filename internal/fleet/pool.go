package fleet

import "sync"

// FreeList is a mutex-protected stack of recyclable items. Unlike
// sync.Pool it never discards items under GC pressure and never
// allocates per Put/Get once its backing array has grown to the
// high-water mark of outstanding items — the properties the serving
// layer's ticket recycling needs for its zero-allocation steady
// state. New constructs an item when the list is empty.
type FreeList[T any] struct {
	// New constructs an item on Get from an empty list. It must be
	// set before first use.
	New func() T

	mu    sync.Mutex
	items []T
}

// Get pops an item, constructing one with New if the list is empty.
func (f *FreeList[T]) Get() T {
	f.mu.Lock()
	if n := len(f.items); n > 0 {
		x := f.items[n-1]
		var zero T
		f.items[n-1] = zero // don't pin recycled items' references
		f.items = f.items[:n-1]
		f.mu.Unlock()
		return x
	}
	f.mu.Unlock()
	return f.New()
}

// Put returns an item to the list for reuse.
func (f *FreeList[T]) Put(x T) {
	f.mu.Lock()
	f.items = append(f.items, x)
	f.mu.Unlock()
}

// Pool is a size-binned pool of warm, checkout-able resources —
// engines, in this repository's use. Checking out by problem size
// keeps warm arenas matched to the problems they serve: a small
// problem draws from the small bin instead of borrowing (and pinning)
// an arena grown on a huge one, and a large problem never
// grow-thrashes an arena that has only ever seen small inputs.
// Resources are retained across checkouts (a FreeList per bin), which
// is the point: the fleet stays warm.
//
// Checkout and Checkin are safe for concurrent use. The caller must
// pass the same size to Checkin that it passed to Checkout, so the
// resource returns to the bin it was warmed for.
type Pool[E any] struct {
	bins  Bins
	lists []FreeList[E]
}

// NewPool returns a pool binned at the given bounds (nil selects
// DefaultBinBounds), constructing resources with newE on demand.
func NewPool[E any](bounds []int, newE func() E) *Pool[E] {
	if bounds == nil {
		bounds = DefaultBinBounds
	}
	p := &Pool[E]{bins: NewBins(bounds)}
	p.lists = make([]FreeList[E], p.bins.Count())
	for i := range p.lists {
		p.lists[i].New = newE
	}
	return p
}

// Bins returns the pool's size-bin routing.
func (p *Pool[E]) Bins() Bins { return p.bins }

// Checkout borrows a resource warmed for problems of size n.
func (p *Pool[E]) Checkout(n int) E { return p.lists[p.bins.Index(n)].Get() }

// Checkin returns a resource borrowed with Checkout(n).
func (p *Pool[E]) Checkin(n int, e E) { p.lists[p.bins.Index(n)].Put(e) }
