// Package fleet provides the generic building blocks of the serving
// layer: size-bin routing, bounded admission queues with backpressure,
// free lists for recyclable per-request state, and size-binned pools
// of warm, checkout-able resources.
//
// The paper's serving-shaped premise (§5, Table II) is that a machine
// owns a fixed set of vector resources and keeps them saturated across
// a stream of problems of wildly varying size; the working space is
// acquired once and reused, never re-acquired per problem. This
// package lifts that premise one level up, from a single engine to a
// fleet of them: listrank.Server shards a stream of rank/scan requests
// across size-binned warm engines, and the tree and graph packages
// check their engines out of size-binned pools, so a 1k-element
// request never borrows (or grow-thrashes) an arena warmed on a
// 10M-element problem.
//
// Everything here is allocation-free in the steady state: the queue is
// a fixed ring, admission and hand-off synchronize on condition
// variables, and free lists reuse their backing array once it has
// grown to the high-water mark of in-flight items. The only
// allocations are the ones the caller asks for (a FreeList or Pool
// constructing a new item when it is empty).
package fleet

import "errors"

// Policy selects what a full admission queue does with a new request.
type Policy int

const (
	// Block parks the submitter until the queue has space (or the
	// queue closes). This is the default: backpressure propagates to
	// the producer, and nothing is lost.
	Block Policy = iota
	// Reject fails the submission immediately with ErrRejected,
	// leaving the caller to shed or retry. This is the policy for
	// latency-sensitive fronts that would rather drop than queue.
	Reject
)

// Errors reported by Queue.
var (
	// ErrRejected is returned by Put on a full queue under the Reject
	// policy.
	ErrRejected = errors.New("fleet: admission queue full")
	// ErrClosed is returned by Put after Close. Items admitted before
	// Close are still drained and served.
	ErrClosed = errors.New("fleet: queue closed")
)

// DefaultBinBounds are the size-bin upper bounds the serving layer
// uses when the caller does not choose its own: three bins splitting
// "small" (coalescing wins), "medium" and "large" (within-problem
// parallelism wins) at 4k and 256k elements. The bounds track the
// regime boundary the batch scheduler measures: below a few thousand
// elements, contraction overhead dominates and across-problem
// parallelism is the right schedule.
var DefaultBinBounds = []int{4096, 262144}

// Bins routes problem sizes to size bins. A Bins over bounds
// b0 < b1 < … < bk-1 has k+1 bins: bin i holds sizes n ≤ bi, and the
// final bin is unbounded. The zero value has a single unbounded bin.
type Bins struct {
	bounds []int
}

// NewBins returns a Bins over the given ascending positive upper
// bounds (plus the implicit final unbounded bin). It panics if the
// bounds are not strictly ascending and positive.
func NewBins(bounds []int) Bins {
	for i, b := range bounds {
		if b <= 0 || (i > 0 && b <= bounds[i-1]) {
			panic("fleet: bin bounds must be strictly ascending and positive")
		}
	}
	return Bins{bounds: append([]int(nil), bounds...)}
}

// Count returns the number of bins (len(bounds) + 1 for the unbounded
// final bin).
func (b Bins) Count() int { return len(b.bounds) + 1 }

// Index returns the bin for a problem of size n: the first bin whose
// upper bound is ≥ n, or the final unbounded bin.
func (b Bins) Index(n int) int {
	for i, ub := range b.bounds {
		if n <= ub {
			return i
		}
	}
	return len(b.bounds)
}

// Bound returns bin i's upper bound, or -1 for the final unbounded
// bin.
func (b Bins) Bound(i int) int {
	if i >= len(b.bounds) {
		return -1
	}
	return b.bounds[i]
}
