package fleet

import (
	"sync"
	"time"
)

// TokenBucket is the per-tenant admission quota primitive the network
// daemon layers ON TOP OF the queue's Block/Reject backpressure:
// backpressure protects the fleet from aggregate overload, while a
// quota protects tenants from each other — one greedy client drains
// its own bucket and is rejected before it can occupy queue slots the
// other tenants' traffic needs.
//
// The bucket holds up to burst tokens and refills at rate tokens per
// second; Allow consumes one token per admitted request. A rate <= 0
// disables the bucket (Allow always admits), so an unconfigured
// tenant costs one branch. Allow takes the current time as an
// argument — the caller already has it, and injecting it keeps the
// refill arithmetic deterministic under test. The steady state
// allocates nothing.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a full bucket refilling at rate tokens per
// second with the given burst capacity (clamped to at least 1 token
// so a positive rate can ever admit).
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Allow reports whether one request may be admitted at time now,
// consuming a token when it is. Calls with a non-monotonic now are
// safe: time never flows backwards through the bucket.
func (tb *TokenBucket) Allow(now time.Time) bool {
	if tb.rate <= 0 {
		return true
	}
	tb.mu.Lock()
	if tb.last.IsZero() {
		tb.last = now
	}
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens = min(tb.burst, tb.tokens+dt*tb.rate)
		tb.last = now
	}
	ok := tb.tokens >= 1
	if ok {
		tb.tokens--
	}
	tb.mu.Unlock()
	return ok
}
