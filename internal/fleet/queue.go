package fleet

import "sync"

// Queue is a bounded multi-producer single-consumer admission queue:
// the hand-off point between request submitters and a shard's
// dispatcher. Capacity is fixed at construction (the ring never
// grows — a full queue is what backpressure is *for*), Put applies
// the queue's Policy when the ring is full, and Close is
// deterministic: items admitted before Close are still drained by
// TakeBatch, and only then does TakeBatch report the queue exhausted.
//
// The steady state allocates nothing: Put writes a ring slot and
// signals a condvar; TakeBatch copies slots out and signals back.
// Multiple consumers are safe too (the consumer side is also
// mutex-serialized); "single-consumer" describes the intended
// dispatcher-per-shard shape, not a requirement.
type Queue[T any] struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond
	buf      []T
	head     int // index of the oldest item
	n        int // items currently queued
	policy   Policy
	closed   bool
}

// NewQueue returns a queue holding at most capacity items (clamped to
// at least 1) under the given backpressure policy.
func NewQueue[T any](capacity int, policy Policy) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue[T]{buf: make([]T, capacity), policy: policy}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	return q
}

// Cap returns the queue's fixed capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Len returns the number of items currently queued.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	n := q.n
	q.mu.Unlock()
	return n
}

// Put admits x. On a full queue it blocks until space frees up (Block
// policy) or returns ErrRejected immediately (Reject policy); after
// Close it returns ErrClosed. A nil error means the consumer will see
// x.
func (q *Queue[T]) Put(x T) error {
	q.mu.Lock()
	for q.n == len(q.buf) && !q.closed {
		if q.policy == Reject {
			q.mu.Unlock()
			return ErrRejected
		}
		q.notFull.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		return ErrClosed
	}
	q.buf[(q.head+q.n)%len(q.buf)] = x
	q.n++
	q.mu.Unlock()
	q.notEmpty.Signal()
	return nil
}

// TakeBatch blocks until at least one item is queued (or the queue is
// closed and drained), then moves up to len(dst) items into dst in
// admission order and returns how many. ok is false only when the
// queue is closed and every admitted item has been taken — the
// consumer's signal to exit. Taking a batch rather than one item is
// what enables coalescing: everything that queued up while the
// consumer was busy arrives in one hand-off.
func (q *Queue[T]) TakeBatch(dst []T) (taken int, ok bool) {
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return 0, false
	}
	taken = q.n
	if taken > len(dst) {
		taken = len(dst)
	}
	var zero T
	for i := 0; i < taken; i++ {
		dst[i] = q.buf[q.head]
		q.buf[q.head] = zero // don't pin served items
		q.head = (q.head + 1) % len(q.buf)
	}
	q.n -= taken
	q.mu.Unlock()
	// Every blocked producer may now have space (we freed `taken`
	// slots), and blocked producers only exist under the Block policy.
	q.notFull.Broadcast()
	return taken, true
}

// Close marks the queue closed: later Puts fail with ErrClosed,
// blocked Puts wake and fail, and TakeBatch keeps draining what was
// admitted before reporting exhaustion. Close is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}
