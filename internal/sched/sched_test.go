package sched

import (
	"math"
	"testing"

	"listrank/internal/stats"
)

func TestScheduleStrictlyIncreasing(t *testing.T) {
	for _, tc := range []struct {
		n, m int
		s1   float64
	}{
		{10000, 199, 25}, {10000, 199, 80}, {1 << 20, 50000, 15}, {5000, 40, 100},
	} {
		s := FromRecurrence(tc.n, tc.m, tc.s1, Phase1C90(), stats.ExpectedLongest(tc.n, tc.m), 64)
		if len(s) == 0 {
			t.Fatalf("empty schedule for %+v", tc)
		}
		prev := 0
		for i, v := range s {
			if v <= prev {
				t.Fatalf("schedule not increasing at %d: %v", i, s)
			}
			prev = v
		}
	}
}

func TestScheduleSpacingWidens(t *testing.T) {
	// Fig. 10: "the S_i's become increasingly further apart for larger
	// i's because the rate sublists complete slows down".
	n, m := 10000, 199
	s := FromRecurrence(n, m, 30, Phase1C90(), stats.ExpectedLongest(n, m), 64)
	if len(s) < 4 {
		t.Fatalf("schedule too short to check spacing: %v", s)
	}
	first := s[1] - s[0]
	last := s[len(s)-1] - s[len(s)-2]
	if last <= first {
		t.Errorf("spacing did not widen: first %d, last %d (%v)", first, last, s)
	}
}

func TestScheduleCoversLongestSublist(t *testing.T) {
	n, m := 10000, 199
	maxLen := stats.ExpectedLongest(n, m)
	s := FromRecurrence(n, m, 30, Phase1C90(), maxLen, 64)
	if float64(s[len(s)-1]) < maxLen {
		t.Errorf("schedule ends at %d before expected longest %f", s[len(s)-1], maxLen)
	}
}

func TestHigherPackCostDelaysPacking(t *testing.T) {
	// §4.3: "As we increase c relative to a eventually we find that
	// the execution time is reduced by decreasing the number of times
	// we load balance." Compare fully optimized schedules.
	n, m := 10000, 199
	_, cheap := OptimizeS1(n, m, Params{A: 3.4, C: 1}, 35, 1200)
	_, costly := OptimizeS1(n, m, Params{A: 3.4, C: 120}, 35, 1200)
	if len(costly) > len(cheap) {
		t.Errorf("expensive packs produced more pack points: %d > %d", len(costly), len(cheap))
	}
}

func TestExpectedPhaseCostReasonable(t *testing.T) {
	// With the paper's Phase 1 constants and a good schedule, the
	// per-vertex cost must come out a bit above the a = 3.4
	// cycles/vertex floor: the excess is the overshoot-vs-pack
	// tradeoff, which vanishes only as n/m grows (Eq. 5's
	// m-proportional terms divided by n go as 1/log n).
	n, m := 1<<20, (1<<20)/20
	_, sched := OptimizeS1(n, m, Phase1C90(), 35, 1200)
	cost := ExpectedPhaseCost(n, m, sched, 3.4, 35, 8.2, 1200)
	per := cost / float64(n)
	if per < 3.4 || per > 5.5 {
		t.Errorf("Phase 1 cost %.2f cycles/vertex, want in [3.4, 5.5]", per)
	}
}

func TestCostPerVertexFallsWithMeanSublistLength(t *testing.T) {
	// The m-proportional overheads amortize away as n/m grows: the
	// optimized per-vertex cost must decrease toward the a = 3.4
	// floor as m shrinks.
	n := 1 << 20
	prev := math.Inf(1)
	for _, div := range []int{10, 40, 160, 640} {
		m := n / div
		_, sched := OptimizeS1(n, m, Phase1C90(), 35, 1200)
		per := ExpectedPhaseCost(n, m, sched, 3.4, 35, 8.2, 1200) / float64(n)
		if per >= prev {
			t.Errorf("cost/vertex %.3f at m=n/%d did not fall below %.3f", per, div, prev)
		}
		if per < 3.4 {
			t.Errorf("cost/vertex %.3f below the traversal floor", per)
		}
		prev = per
	}
}

func TestOptimizeS1BeatsNaive(t *testing.T) {
	n, m := 10000, 199
	pr := Phase1C90()
	_, best := OptimizeS1(n, m, pr, 35, 1200)
	bestCost := ExpectedPhaseCost(n, m, best, pr.A, 35, pr.C, 1200)
	for _, s1 := range []float64{1, 5, 500} {
		sched := FromRecurrence(n, m, s1, pr, stats.ExpectedLongest(n, m), 64)
		c := ExpectedPhaseCost(n, m, sched, pr.A, 35, pr.C, 1200)
		if c < bestCost-1e-6 {
			t.Errorf("naive S1=%v cost %.0f beat optimized %.0f", s1, c, bestCost)
		}
	}
}

func TestPaperFig10Setting(t *testing.T) {
	// Fig. 10's caption: n = 10000, m = 199, load balancing 11 times
	// minimizes the expected execution time. Our optimizer should land
	// in that neighborhood (it uses the same g and the same constants).
	n, m := 10000, 199
	_, sched := OptimizeS1(n, m, Phase1C90(), 35, 1200)
	if len(sched) < 6 || len(sched) > 20 {
		t.Errorf("optimal schedule has %d packs; paper's setting had 11", len(sched))
	}
}

func TestExpectedPhaseCostMonotoneInB(t *testing.T) {
	// Sanity: larger per-loop overhead must not decrease cost.
	n, m := 10000, 199
	s := FromRecurrence(n, m, 30, Phase1C90(), stats.ExpectedLongest(n, m), 64)
	c1 := ExpectedPhaseCost(n, m, s, 3.4, 35, 8.2, 1200)
	c2 := ExpectedPhaseCost(n, m, s, 3.4, 70, 8.2, 1200)
	if c2 <= c1 {
		t.Errorf("doubling b lowered cost: %v <= %v", c2, c1)
	}
}

func TestDegenerateInputs(t *testing.T) {
	// Tiny m, s1 below 1, limit hit: must not loop forever or panic.
	s := FromRecurrence(100, 2, 0.1, Phase1C90(), stats.ExpectedLongest(100, 2), 8)
	if len(s) == 0 || len(s) > 8 {
		t.Errorf("degenerate schedule: %v", s)
	}
	if math.IsNaN(ExpectedPhaseCost(100, 2, s, 3.4, 35, 8.2, 1200)) {
		t.Error("NaN cost")
	}
}
