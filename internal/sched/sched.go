// Package sched computes the optimal load-balancing schedule of §4 of
// the paper: given that sublist lengths are approximately exponential,
// when should the lockstep traversal of Phases 1 and 3 stop to pack
// completed sublists out of the working set?
//
// Let S_i be the total number of links each active sublist has
// traversed before the i-th load balance and g(x) the expected number
// of sublists longer than x (stats.G). Minimizing the expected phase
// time (Eq. 3) by setting ∂T/∂S_i = 0 yields the recurrence (Eq. 4):
//
//	S_{i+1} = S_i + (g(S_{i-1}) − g(S_i)) / ((m/n)·g(S_i)) − c/a
//
// where a is the per-element traversal cost and c the per-element pack
// cost. Given S_0 = 0 and a choice of S_1 the whole schedule follows;
// the packs spread out as i grows because completions slow down, and a
// larger c/a pushes packing later and reduces how often it pays off.
package sched

import (
	"math"

	"listrank/internal/stats"
)

// Params are the cost ratios the schedule depends on: A is the
// per-element cycles of the traversal loop (3.4 for Phase 1 on the
// C90), C the per-element cycles of a pack (8.2).
type Params struct {
	A float64
	C float64
}

// Phase1C90 and Phase3C90 are the paper's measured cost pairs.
func Phase1C90() Params { return Params{A: 3.4, C: 8.2} }
func Phase3C90() Params { return Params{A: 4.6, C: 7.2} }

// FromRecurrence iterates Eq. 4 from S_1 = s1 until the schedule
// covers maxLen links (every sublist has completed in expectation),
// returning the strictly increasing integer schedule S_1 < S_2 < …
// Limit caps the schedule length as a safety net.
func FromRecurrence(n, m int, s1 float64, pr Params, maxLen float64, limit int) []int {
	if s1 < 1 {
		s1 = 1
	}
	if limit <= 0 {
		limit = 64
	}
	cOverA := pr.C / pr.A
	mn := float64(m) / float64(n)
	var out []int
	sPrev := 0.0 // S_{i-1}
	sCur := s1   // S_i
	push := func(s float64) {
		v := int(math.Ceil(s))
		if len(out) > 0 && v <= out[len(out)-1] {
			v = out[len(out)-1] + 1
		}
		out = append(out, v)
	}
	push(sCur)
	for sCur < maxLen && len(out) < limit {
		gPrev := stats.G(sPrev, n, m)
		gCur := stats.G(sCur, n, m)
		if gCur <= 0 {
			break
		}
		sNext := sCur + (gPrev-gCur)/(mn*gCur) - cOverA
		if sNext <= sCur+1 {
			sNext = sCur + 1 // enforce progress when the optimum stalls
		}
		sPrev, sCur = sCur, sNext
		push(sCur)
	}
	return out
}

// ExpectedPhaseCost evaluates Eq. 3's phase portion for one traversal
// phase: the expected cycles to traverse and pack with schedule s,
// where the loop models are T_scan(x) = a·x + b per link and
// T_pack(x) = c·x + d per pack over x active sublists. It integrates
// the step function of Fig. 10: between S_i and S_{i+1} the vector
// length is g(S_i).
//
// The schedule is extended with its own recurrence implicitly: the
// cost after the last S covers the remaining expected work at the last
// vector length ≥ 1 (all sublists completed by maxLen).
func ExpectedPhaseCost(n, m int, s []int, a, b, c, d float64) float64 {
	maxLen := stats.ExpectedLongest(n, m)
	cost := 0.0
	prev := 0.0
	for _, si := range s {
		x := float64(si)
		width := x - prev
		if width <= 0 {
			continue
		}
		active := stats.G(prev, n, m) // vector length through this span
		cost += width * (a*active + b)
		cost += c*stats.G(x, n, m) + d // the pack at S_i
		prev = x
	}
	if prev < maxLen {
		// Tail: no more packs; chase the longest sublists to the end.
		active := stats.G(prev, n, m)
		if active < 1 {
			active = 1
		}
		cost += (maxLen - prev) * (a*active + b)
	}
	return cost
}

// OptimizeS1 searches for the S_1 whose recurrence-generated schedule
// minimizes ExpectedPhaseCost, scanning a geometric grid of
// candidates. It returns the best S_1 and its schedule.
func OptimizeS1(n, m int, pr Params, b, d float64) (float64, []int) {
	maxLen := stats.ExpectedLongest(n, m)
	bestS1 := 1.0
	bestCost := math.Inf(1)
	var bestSched []int
	mean := float64(n) / float64(m)
	for f := 0.05; f <= 3.0; f *= 1.15 {
		s1 := f * mean
		if s1 < 1 {
			continue
		}
		sched := FromRecurrence(n, m, s1, pr, maxLen, 64)
		cost := ExpectedPhaseCost(n, m, sched, pr.A, b, pr.C, d)
		if cost < bestCost {
			bestCost = cost
			bestS1 = s1
			bestSched = sched
		}
	}
	return bestS1, bestSched
}
