package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"listrank/internal/chaos"
)

// This file is layer 0 of the arena architecture: the persistent
// worker-pool runtime. The paper's multiprocessor accounting (§5,
// Table II) assumes processors are *resident* — a schedule pays for
// synchronization between rounds, never for re-acquiring its
// processors per problem. The free functions in this package violate
// that on the goroutine track: every ForChunks/RunWorkers call spawns
// p fresh goroutines and allocates a WaitGroup (and usually a closure),
// so the engine layer's zero-steady-state-allocation guarantee used to
// collapse to Procs == 1. A Pool restores the paper's discipline: a
// fixed set of worker goroutines is created once, parks on a reusable
// barrier between fan-outs, and services any number of dispatches with
// zero heap allocations — per-phase fan-out cost drops from
// spawn+schedule+free to an unpark and two barrier crossings
// (BenchmarkFanout measures both).
//
// Two API surfaces share one dispatch path:
//
//   - ForChunks / ForStrided / RunWorkers mirror the free functions.
//     The pool side allocates nothing, but a closure literal passed to
//     them still heap-allocates at the call site (it escapes into the
//     pool's job slot), so these are for call sites that are off the
//     steady-state contract.
//   - ForChunksCtx / ForStridedCtx / RunWorkersCtx take a context
//     pointer plus a *named* function. A top-level func value is a
//     static pointer and a pointer-shaped ctx converts to any without
//     allocating, so a dispatch through the Ctx forms performs zero
//     heap allocations. The engine hot paths stash per-call arguments
//     in their arena and pass the arena as ctx (see core.Scratch.fc).
//
// Concurrency: a Pool serves one dispatch at a time. Dispatch entry is
// a busy-CAS; a pool that is already occupied (a concurrent engine, or
// a nested fan-out from inside a worker body) degrades that call to
// the spawn-per-call free functions, which are always correct. This is
// what lets every engine share the process-wide Shared() pool: the
// common case (one engine streaming problems) is resident-worker fast,
// and contention costs only a goroutine spawn, never a deadlock.
//
// The free functions remain as-is — they are the spawn-per-call
// fallback, and the reference algorithms (wyllie, ruling, randmate)
// deliberately stay on them so their measured costs keep including the
// per-call fan-out the paper's baselines would pay.

const (
	kindNone = iota
	kindChunks
	kindStrided
	kindWorkers
	kindShutdown
)

// WorkerPanic is the value a fan-out rethrows on the dispatching
// goroutine when one of its worker bodies panicked. Containment is
// what makes the runtime crash-safe to serve on: without it, a panic
// on a spawned or resident worker goroutine kills the whole process
// (Go offers no cross-goroutine recover), so one malformed request
// inside a fan-out would take down every request in flight. Instead,
// each worker recovers its own panic, records the first one in the
// dispatch's panic slot, and still reaches the completion barrier; the
// dispatcher then observes a fully-quiesced fan-out and rethrows the
// fault here, where the caller's ordinary recover can see it. Value
// preserves the original panic value and Stack the faulted worker's
// stack. WorkerPanic implements error (and unwraps to Value when that
// is itself an error), so recover sites can classify the fault with
// errors.Is through the usual chain.
type WorkerPanic struct {
	// Value is the original value the worker panicked with.
	Value any
	// Stack is the faulted worker's stack trace, captured at recover.
	Stack []byte
}

// Error formats the original panic value; the worker stack is carried
// separately in Stack so logs can include it without bloating the
// message.
func (wp *WorkerPanic) Error() string {
	return fmt.Sprintf("par: panic on fan-out worker: %v", wp.Value)
}

// Unwrap exposes Value when the worker panicked with an error, so
// errors.Is / errors.As reach through the containment wrapper.
func (wp *WorkerPanic) Unwrap() error {
	if err, ok := wp.Value.(error); ok {
		return err
	}
	return nil
}

// wrapPanic normalizes a recovered value into a *WorkerPanic, keeping
// an already-wrapped fault (a nested fan-out's rethrow caught by an
// outer worker) as-is so the original value and stack survive.
func wrapPanic(r any) *WorkerPanic {
	if wp, ok := r.(*WorkerPanic); ok {
		return wp
	}
	return &WorkerPanic{Value: r, Stack: debug.Stack()}
}

// panicSlot collects the first panic of one fan-out. The fault path
// may allocate freely (it is the opposite of the steady state); the
// no-fault path costs one recover call per worker per dispatch.
type panicSlot struct {
	mu  sync.Mutex
	val *WorkerPanic
}

// recoverInto is the deferred recover of a spawned fan-out worker:
// the panic is swallowed into the slot and the worker still reaches
// its WaitGroup.
func (ps *panicSlot) recoverInto() {
	if r := recover(); r != nil {
		ps.note(r)
	}
}

// note records r if it is the fan-out's first fault.
func (ps *panicSlot) note(r any) {
	wp := wrapPanic(r)
	ps.mu.Lock()
	if ps.val == nil {
		ps.val = wp
	}
	ps.mu.Unlock()
}

// rethrow re-panics the recorded fault, if any, clearing the slot for
// the next dispatch. It must run after the fan-out has fully
// quiesced. Free-function fan-outs call it on their local slot; a
// Pool instead takes the fault before release (see finishDispatch)
// because its slot is shared across dispatches.
func (ps *panicSlot) rethrow() {
	if ps.val == nil {
		return
	}
	wp := ps.val
	ps.val = nil
	panic(wp)
}

// take removes and returns the recorded fault, leaving the slot clean
// for the next dispatch.
func (ps *panicSlot) take() *WorkerPanic {
	ps.mu.Lock()
	wp := ps.val
	ps.val = nil
	ps.mu.Unlock()
	return wp
}

// Pool is a persistent set of worker goroutines servicing chunked,
// strided and round-synchronous fan-outs. The caller participates as
// worker 0, so a Pool of procs p keeps p-1 goroutines parked between
// dispatches. A Pool serves one dispatch at a time; concurrent or
// nested dispatch attempts fall back to spawn-per-call transparently.
// Use NewPool; a Pool must not be copied after first use.
//
// Parking protocol: workers sleep on an epoch condvar. A dispatch
// publishes the job, advances the epoch and broadcasts; each worker
// wakes exactly once, runs its share, decrements the outstanding
// count, and goes straight back to waiting for the next epoch — only
// the last finisher wakes the dispatcher. One scheduling event per
// worker per fan-out is the whole point: a two-barrier rendezvous
// would schedule every worker a second time just to re-park it.
type Pool struct {
	procs int
	wg    sync.WaitGroup

	// busy serializes dispatches; closed marks shutdown intent. After
	// Close, busy is held forever so every later dispatch attempt
	// falls back to spawning.
	busy   atomic.Bool
	closed atomic.Bool

	// Worker parking: epoch advances once per dispatch under mu.
	mu    sync.Mutex
	cond  *sync.Cond
	epoch uint64

	// Completion: outstanding counts workers still running the current
	// job; the last one signals doneCond.
	outstanding atomic.Int64
	doneMu      sync.Mutex
	doneCond    *sync.Cond

	// round is handed to RunWorkers bodies and resized per dispatch
	// (it is quiescent between dispatches).
	round Barrier

	// The current job, published before the epoch advance; references
	// are cleared after every dispatch so a parked pool never keeps a
	// finished problem alive.
	kind int
	n, p int
	ctx  any
	fc   func(ctx any, w, lo, hi int)
	fs   func(ctx any, w, i int)
	fw   func(ctx any, w int, b *Barrier)

	// faults records the current dispatch's first worker panic; the
	// dispatcher rethrows it (as a *WorkerPanic) once the fan-out has
	// quiesced and the pool has been released, so a fault fails the
	// dispatching call without wedging the barrier or killing the
	// process — the pool stays dispatchable afterward.
	faults panicSlot
}

// NewPool returns a pool of procs resident workers (clamped to at
// least 1). procs-1 goroutines are spawned immediately and park until
// work arrives or Close is called; the dispatching caller always
// serves as worker 0. A pool with procs == 1 runs everything inline
// and spawns nothing.
func NewPool(procs int) *Pool {
	if procs < 1 {
		procs = 1
	}
	pl := &Pool{procs: procs}
	pl.cond = sync.NewCond(&pl.mu)
	pl.doneCond = sync.NewCond(&pl.doneMu)
	pl.round.n = procs
	pl.round.cond = sync.NewCond(&pl.round.mu)
	pl.wg.Add(procs - 1)
	for w := 1; w < procs; w++ {
		go pl.workerLoop(w)
	}
	return pl
}

// Procs returns the pool's resident worker count (including the
// caller's worker-0 slot).
func (pl *Pool) Procs() int {
	if pl == nil {
		return 0
	}
	return pl.procs
}

// Close shuts the pool down deterministically: it waits for any
// in-flight dispatch to finish, releases the parked workers into an
// exit job, and returns only after every worker goroutine has
// terminated. A closed pool remains safe to use — dispatches fall
// back to spawn-per-call — and Close is idempotent. Close must not be
// called from inside a body the pool is running (it would wait on
// itself).
func (pl *Pool) Close() {
	if pl == nil || pl.closed.Swap(true) {
		return
	}
	// An in-flight dispatch usually finishes within a phase, but it can
	// legitimately run for a long time (a large rank on the pool), so
	// yield briefly and then park between retries instead of burning a
	// core until the dispatcher releases the pool.
	for spins := 0; !pl.busy.CompareAndSwap(false, true); spins++ {
		if spins < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
	if pl.procs > 1 {
		pl.kind = kindShutdown
		pl.mu.Lock()
		pl.epoch++
		pl.mu.Unlock()
		pl.cond.Broadcast()
		pl.wg.Wait()
	}
	// busy stays held: the pool is dead, and every later tryAcquire
	// fails over to the spawn path.
}

func (pl *Pool) workerLoop(w int) {
	defer pl.wg.Done()
	seen := uint64(0)
	for {
		pl.mu.Lock()
		for pl.epoch == seen {
			pl.cond.Wait()
		}
		seen = pl.epoch
		pl.mu.Unlock()
		if pl.kind == kindShutdown {
			return
		}
		pl.runGuarded(w)
		if pl.outstanding.Add(-1) == 0 {
			pl.doneMu.Lock()
			pl.doneCond.Signal()
			pl.doneMu.Unlock()
		}
	}
}

// runGuarded is run with panic containment: a panicking body is
// recovered on the worker, recorded in the dispatch's panic slot, and
// the worker still reaches the completion protocol (outstanding
// decrement, barrier abandonment for round-synchronous jobs), so the
// dispatcher always completes and can rethrow. The no-fault cost is
// one open-coded defer and a nil recover per worker per dispatch —
// nothing allocates, preserving the zero-allocation Ctx contract.
func (pl *Pool) runGuarded(w int) {
	defer pl.containPanic(w)
	chaos.Point(chaos.PointWorker)
	pl.run(w)
}

// containPanic is runGuarded's deferred recover. A fault inside a
// RunWorkersCtx body additionally abandons the round barrier on the
// panicking worker's behalf: its surviving peers would otherwise wait
// forever for a participant that will never call Wait again.
func (pl *Pool) containPanic(w int) {
	if r := recover(); r != nil {
		pl.faults.note(r)
		if pl.kind == kindWorkers && w < pl.p {
			pl.round.abandon()
		}
	}
}

// run executes worker w's share of the current job. When the job asks
// for more workers than the pool holds (q > procs), chunked and
// strided jobs are multiplexed: resident worker w plays job-worker
// roles w, w+procs, w+2·procs, … so per-worker buffer indexing and the
// chunk grid stay exactly as the caller sized them.
func (pl *Pool) run(w int) {
	switch pl.kind {
	case kindChunks:
		for jw := w; jw < pl.p; jw += pl.procs {
			lo, hi := Chunk(pl.n, pl.p, jw)
			pl.fc(pl.ctx, jw, lo, hi)
		}
	case kindStrided:
		for jw := w; jw < pl.p; jw += pl.procs {
			for i := jw; i < pl.n; i += pl.p {
				pl.fs(pl.ctx, jw, i)
			}
		}
	case kindWorkers:
		if w < pl.p {
			pl.fw(pl.ctx, w, &pl.round)
		}
	}
}

// tryAcquire claims the pool for one dispatch.
func (pl *Pool) tryAcquire() bool {
	return !pl.closed.Load() && pl.busy.CompareAndSwap(false, true)
}

// release clears the job references and frees the pool. Deferred from
// dispatch so a panicking worker-0 body cannot wedge the pool.
func (pl *Pool) release() {
	pl.kind = kindNone
	pl.ctx, pl.fc, pl.fs, pl.fw = nil, nil, nil, nil
	pl.busy.Store(false)
}

// dispatch releases the workers into the job fields (already set by
// the caller), runs worker 0's share inline, and waits for everyone.
// Job-field writes happen-before the workers' reads via mu (written
// before the epoch advance, read after observing it); the outstanding
// count plus doneMu order the workers' writes before the caller
// continues. Worker panics — including worker 0's own — are contained
// into the fault slot and rethrown by finishDispatch, so a fault
// unwinds a clean, reusable pool into the caller's recover.
func (pl *Pool) dispatch() {
	defer pl.finishDispatch()
	pl.outstanding.Store(int64(pl.procs - 1))
	pl.mu.Lock()
	pl.epoch++
	pl.mu.Unlock()
	pl.cond.Broadcast()
	pl.runGuarded(0)
}

// finishDispatch completes a dispatch: await the fan-out, take
// ownership of any recorded fault, free the pool, and only then
// re-panic. The fault leaves the shared slot strictly before release
// publishes the pool — once busy clears, another goroutine may start
// the next dispatch immediately, and with the old ordering (release,
// then read the slot) that dispatch's fault notes raced with, and
// could be stolen by, this one's rethrow. The panic itself still
// fires after release so it unwinds a clean, dispatchable pool.
func (pl *Pool) finishDispatch() {
	pl.await()
	wp := pl.faults.take()
	pl.release()
	if wp != nil {
		panic(wp)
	}
}

// await blocks until every worker has finished the current job.
func (pl *Pool) await() {
	pl.doneMu.Lock()
	for pl.outstanding.Load() != 0 {
		pl.doneCond.Wait()
	}
	pl.doneMu.Unlock()
}

// ForChunksCtx is the zero-allocation form of ForChunks: body must be
// a named (non-closure) function and reads its per-call state from
// ctx. Semantics match ForChunks(n, p, …) exactly, including the
// clamped worker count and the inline p == 1 path.
func (pl *Pool) ForChunksCtx(n, p int, ctx any, body func(ctx any, w, lo, hi int)) {
	p = Procs(p, n)
	if p <= 0 {
		return
	}
	if p == 1 {
		body(ctx, 0, 0, n)
		return
	}
	if pl == nil || !pl.tryAcquire() {
		forChunksCtxSpawn(n, p, ctx, body)
		return
	}
	pl.kind, pl.n, pl.p = kindChunks, n, p
	pl.ctx, pl.fc = ctx, body
	pl.dispatch()
}

// ForStridedCtx is the zero-allocation form of ForStrided.
func (pl *Pool) ForStridedCtx(n, p int, ctx any, body func(ctx any, w, i int)) {
	p = Procs(p, n)
	if p <= 0 {
		return
	}
	if p == 1 {
		for i := 0; i < n; i++ {
			body(ctx, 0, i)
		}
		return
	}
	if pl == nil || !pl.tryAcquire() {
		forStridedCtxSpawn(n, p, ctx, body)
		return
	}
	pl.kind, pl.n, pl.p = kindStrided, n, p
	pl.ctx, pl.fs = ctx, body
	pl.dispatch()
}

// barrier1 is the shared single-participant barrier handed to inline
// RunWorkersCtx bodies; Wait on it never blocks, and concurrent use is
// safe because every Wait completes a phase by itself.
var barrier1 = NewBarrier(1)

// RunWorkersCtx is the zero-allocation form of RunWorkers. Bodies are
// round-synchronous: all p participants call b.Wait between rounds, so
// the job cannot be multiplexed onto fewer workers — a request for
// more workers than the pool holds falls back to spawning.
func (pl *Pool) RunWorkersCtx(p int, ctx any, body func(ctx any, w int, b *Barrier)) {
	if p < 1 {
		p = 1
	}
	if p == 1 {
		body(ctx, 0, barrier1)
		return
	}
	if pl == nil || p > pl.procs || !pl.tryAcquire() {
		runWorkersCtxSpawn(p, ctx, body)
		return
	}
	pl.round.n = p // quiescent between dispatches; resize is safe
	pl.kind, pl.p = kindWorkers, p
	pl.ctx, pl.fw = ctx, body
	pl.dispatch()
}

// ForChunks mirrors the free ForChunks on the pool's resident workers.
// The pool side allocates nothing, but passing a closure literal still
// allocates it at the call site; steady-state paths use ForChunksCtx.
func (pl *Pool) ForChunks(n, p int, body func(w, lo, hi int)) {
	pl.ForChunksCtx(n, p, body, chunkAdapter)
}

func chunkAdapter(ctx any, w, lo, hi int) { ctx.(func(w, lo, hi int))(w, lo, hi) }

// ForStrided mirrors the free ForStrided on the pool's resident
// workers; see ForChunks for the closure caveat.
func (pl *Pool) ForStrided(n, p int, body func(w, i int)) {
	pl.ForStridedCtx(n, p, body, strideAdapter)
}

func strideAdapter(ctx any, w, i int) { ctx.(func(w, i int))(w, i) }

// RunWorkers mirrors the free RunWorkers on the pool's resident
// workers; see ForChunks for the closure caveat and RunWorkersCtx for
// the oversubscription fallback.
func (pl *Pool) RunWorkers(p int, body func(w int, b *Barrier)) {
	pl.RunWorkersCtx(p, body, workerAdapter)
}

func workerAdapter(ctx any, w int, b *Barrier) { ctx.(func(w int, b *Barrier))(w, b) }

// Spawn-per-call fallbacks, used when the pool is nil, closed, busy
// with another dispatch, or (for RunWorkers) too small for the job.
// They wrap the free functions — the closure this allocates is
// immaterial next to the per-call goroutines the spawn path pays
// anyway.

func forChunksCtxSpawn(n, p int, ctx any, body func(ctx any, w, lo, hi int)) {
	ForChunks(n, p, func(w, lo, hi int) { body(ctx, w, lo, hi) })
}

func forStridedCtxSpawn(n, p int, ctx any, body func(ctx any, w, i int)) {
	ForStrided(n, p, func(w, i int) { body(ctx, w, i) })
}

func runWorkersCtxSpawn(p int, ctx any, body func(ctx any, w int, b *Barrier)) {
	RunWorkers(p, func(w int, b *Barrier) { body(ctx, w, b) })
}

// Shared returns the process-wide pool, created on first use and sized
// to the hardware (max of GOMAXPROCS and NumCPU at creation). Every
// engine that is not given a pool of its own draws from it, so the
// per-package sync.Pool-backed top-level entry points all reuse one
// resident worker set. It is never closed; its parked workers are the
// process's resident processors in the paper's sense. Concurrent
// engines contend on it benignly — whoever arrives second spawns for
// that one fan-out.
func Shared() *Pool {
	sharedOnce.Do(func() {
		p := runtime.GOMAXPROCS(0)
		if c := runtime.NumCPU(); c > p {
			p = c
		}
		sharedPool = NewPool(p)
	})
	return sharedPool
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)
