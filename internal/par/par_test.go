package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestChunkCoversRange(t *testing.T) {
	f := func(nn uint16, pp uint8) bool {
		n := int(nn % 1000)
		p := int(pp%16) + 1
		covered := 0
		prevHi := 0
		for w := 0; w < p; w++ {
			lo, hi := Chunk(n, p, w)
			if lo != prevHi {
				return false // chunks must tile contiguously
			}
			if hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChunkBalance(t *testing.T) {
	// Sizes differ by at most one.
	for _, tc := range []struct{ n, p int }{{10, 3}, {100, 7}, {5, 5}, {16, 4}, {1, 8}} {
		minSz, maxSz := 1<<30, -1
		for w := 0; w < tc.p; w++ {
			lo, hi := Chunk(tc.n, tc.p, w)
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if maxSz-minSz > 1 {
			t.Fatalf("n=%d p=%d chunk sizes range [%d,%d]", tc.n, tc.p, minSz, maxSz)
		}
	}
}

func TestProcs(t *testing.T) {
	if Procs(0, 10) != 1 || Procs(-3, 10) != 1 {
		t.Fatal("Procs must clamp to at least 1")
	}
	if Procs(100, 10) != 10 {
		t.Fatal("Procs must clamp to at most n")
	}
	if Procs(4, 10) != 4 {
		t.Fatal("Procs must pass through valid values")
	}
}

func TestForChunksVisitsAllOnce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 13} {
		const n = 1000
		visited := make([]int32, n)
		ForChunks(n, p, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visited[i], 1)
			}
		})
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("p=%d index %d visited %d times", p, i, v)
			}
		}
	}
}

func TestForChunksZeroItems(t *testing.T) {
	called := false
	ForChunks(0, 4, func(w, lo, hi int) {
		if hi > lo {
			called = true
		}
	})
	if called {
		t.Fatal("ForChunks(0, …) ran a non-empty chunk")
	}
}

func TestBarrierRounds(t *testing.T) {
	const workers = 8
	const rounds = 50
	var counter int64
	RunWorkers(workers, func(w int, b *Barrier) {
		for r := 0; r < rounds; r++ {
			atomic.AddInt64(&counter, 1)
			b.Wait()
			// After the barrier every worker must observe all
			// increments from this round.
			if got := atomic.LoadInt64(&counter); got < int64((r+1)*workers) {
				t.Errorf("round %d: counter %d < %d", r, got, (r+1)*workers)
			}
			b.Wait()
		}
	})
	if counter != workers*rounds {
		t.Fatalf("counter = %d, want %d", counter, workers*rounds)
	}
}

func TestBarrierSingleWorker(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 10; i++ {
		b.Wait() // must never block
	}
}

func TestBarrierReuseStress(t *testing.T) {
	// Workers alternate between writing their round number and reading
	// everyone's; with a correct barrier no worker ever observes a
	// stale round from another worker.
	const workers = 4
	const rounds = 200
	b := NewBarrier(workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	var slots [workers]int64
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				atomic.StoreInt64(&slots[w], int64(r))
				b.Wait()
				for other := 0; other < workers; other++ {
					if got := atomic.LoadInt64(&slots[other]); got != int64(r) {
						t.Errorf("worker %d round %d saw worker %d at round %d", w, r, other, got)
						return
					}
				}
				b.Wait()
			}
		}(w)
	}
	wg.Wait()
}

func TestNewBarrierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestForStridedCoversAllItems(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, p := range []int{1, 3, 8, 200} {
			var mu sync.Mutex
			seen := make([]int, n)
			workers := make(map[int]bool)
			ForStrided(n, p, func(w, i int) {
				mu.Lock()
				seen[i]++
				workers[w] = true
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d p=%d: item %d visited %d times", n, p, i, c)
				}
			}
			if n > 0 && len(workers) > Procs(p, n) {
				t.Fatalf("n=%d p=%d: %d distinct workers", n, p, len(workers))
			}
		}
	}
}

func TestForStridedAssignmentIsStripMined(t *testing.T) {
	// Worker w must see exactly the items congruent to w mod p (§1.1:
	// element processor i gets virtual processors j*l + i).
	n, p := 40, 4
	var mu sync.Mutex
	owner := make([]int, n)
	ForStrided(n, p, func(w, i int) {
		mu.Lock()
		owner[i] = w
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		if owner[i] != i%p {
			t.Fatalf("item %d owned by worker %d, want %d", i, owner[i], i%p)
		}
	}
}
