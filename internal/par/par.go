// Package par provides the shared-memory parallelism runtime used by
// the goroutine track of the algorithms: chunked and strided
// parallel-for over index ranges (the MIMD analogue of strip-mining
// virtual processors onto element processors, paper §1.1), a reusable
// barrier for the synchronous rounds of pointer-jumping algorithms,
// and the persistent worker Pool (pool.go) that keeps a fixed set of
// resident workers parked between fan-outs — the paper's §5 resident
// processors. The free functions below spawn goroutines per call; the
// engine layers dispatch on a Pool and fall back to these under
// contention, while the reference algorithms use them directly.
package par

import (
	"sync"

	"listrank/internal/chaos"
)

// Procs clamps a requested processor count to at least 1 and at most n
// (no point in more workers than work items).
func Procs(p, n int) int {
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	return p
}

// Chunk returns the half-open range [lo, hi) of items assigned to
// worker w of p when n items are divided as evenly as possible, with
// the first n%p workers receiving one extra item.
func Chunk(n, p, w int) (lo, hi int) {
	base := n / p
	rem := n % p
	if w < rem {
		lo = w * (base + 1)
		hi = lo + base + 1
		return lo, hi
	}
	lo = rem*(base+1) + (w-rem)*base
	hi = lo + base
	return lo, hi
}

// ForStrided runs body(w, i) for every i in [0, n) on p goroutines,
// with item i assigned to worker i mod p — the paper's *strip-mining*
// assignment ("element processor i is assigned virtual processors
// j·l+i", §1.1), where ForChunks is its *loop-raking* counterpart
// (contiguous blocks). Strip-mining interleaves workers through
// memory, which balances irregular per-item costs that correlate with
// position at the price of false sharing on adjacent results; the
// chunked assignment is the default everywhere and ForStrided exists
// for the assignment-policy ablation.
//
// Worker panics are contained: every spawned worker runs to the
// WaitGroup even when its body panics, and the first fault is rethrown
// on the calling goroutine as a *WorkerPanic once the fan-out has
// quiesced (an unrecovered panic on a spawned goroutine would
// otherwise kill the process). The p == 1 inline path panics directly,
// as a plain function call would. ForChunks and RunWorkers contain the
// same way.
func ForStrided(n, p int, body func(w, i int)) {
	p = Procs(p, n)
	if p == 1 {
		for i := 0; i < n; i++ {
			body(0, i)
		}
		return
	}
	var faults panicSlot
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			defer faults.recoverInto()
			chaos.Point(chaos.PointWorker)
			for i := w; i < n; i += p {
				body(w, i)
			}
		}(w)
	}
	wg.Wait()
	faults.rethrow()
}

// ForChunks runs body(w, lo, hi) on p goroutines, where [lo, hi) is
// worker w's chunk of [0, n). With p == 1 it runs inline with no
// goroutine, so single-processor measurements carry no scheduling
// overhead. It returns when all workers have finished. Worker panics
// are contained and rethrown on the caller; see ForStrided.
func ForChunks(n, p int, body func(w, lo, hi int)) {
	p = Procs(p, n)
	if p == 1 {
		body(0, 0, n)
		return
	}
	var faults panicSlot
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		lo, hi := Chunk(n, p, w)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer faults.recoverInto()
			chaos.Point(chaos.PointWorker)
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	faults.rethrow()
}

// Barrier is a reusable synchronization barrier for a fixed set of
// workers. Each call to Wait blocks until all n workers have called
// Wait, then releases them together; the barrier then resets for the
// next round. The zero value is not usable; use NewBarrier.
type Barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	phase uint64
}

// NewBarrier returns a barrier for n workers. It panics if n < 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("par: barrier size must be >= 1")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all workers have reached the barrier.
func (b *Barrier) Wait() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for b.phase == phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// abandon removes one worker from the barrier's roster: a worker whose
// body panicked will never call Wait again, and without this its peers
// would block forever waiting for it. If the abandoning worker was the
// last one the current round was waiting on, the round completes.
// Subsequent rounds proceed with the reduced roster — the results are
// garbage, but the fan-out quiesces so the dispatcher can rethrow the
// fault and the caller can discard them.
func (b *Barrier) abandon() {
	b.mu.Lock()
	b.n--
	if b.n > 0 && b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// RunWorkers starts p goroutines running body(w) with a shared barrier
// sized for them, and returns when all are done. It is the harness for
// round-synchronous algorithms: body calls barrier.Wait between rounds.
// Worker panics are contained and rethrown on the caller (see
// ForStrided); a panicking worker abandons the barrier so its peers'
// Waits release instead of deadlocking.
func RunWorkers(p int, body func(w int, b *Barrier)) {
	if p < 1 {
		p = 1
	}
	b := NewBarrier(p)
	if p == 1 {
		body(0, b)
		return
	}
	var faults panicSlot
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					faults.note(r)
					b.abandon()
				}
			}()
			chaos.Point(chaos.PointWorker)
			body(w, b)
		}(w)
	}
	wg.Wait()
	faults.rethrow()
}
