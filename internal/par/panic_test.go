package par

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// mustPanicWorker runs f and returns the *WorkerPanic it rethrows,
// failing the test if f completes or panics with anything else.
func mustPanicWorker(t *testing.T, f func()) *WorkerPanic {
	t.Helper()
	var wp *WorkerPanic
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("fan-out with a panicking body did not panic")
			}
			var ok bool
			if wp, ok = r.(*WorkerPanic); !ok {
				t.Fatalf("rethrown value is %T (%v), want *WorkerPanic", r, r)
			}
		}()
		f()
	}()
	return wp
}

// panicProbe is the Ctx-dispatch context for the containment tests:
// the body panics on the item/chunk holding trip, and counts every
// visit so quiescence can be asserted.
type panicProbe struct {
	trip    int
	visited []int32
}

func panicChunkBody(ctx any, _, lo, hi int) {
	pr := ctx.(*panicProbe)
	for i := lo; i < hi; i++ {
		if i == pr.trip {
			panic("injected: poisoned chunk")
		}
		atomic.AddInt32(&pr.visited[i], 1)
	}
}

// TestPoolWorkerPanicContained: a panic inside a pooled chunked
// dispatch must not kill the process or strand the completion
// protocol — the dispatcher rethrows the first fault as *WorkerPanic
// after the fan-out quiesces, preserving the original panic value.
func TestPoolWorkerPanicContained(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	const n = 1000
	pr := &panicProbe{trip: 700, visited: make([]int32, n)}
	wp := mustPanicWorker(t, func() { pl.ForChunksCtx(n, 4, pr, panicChunkBody) })
	if wp.Value != "injected: poisoned chunk" {
		t.Fatalf("WorkerPanic.Value = %v, want the original panic value", wp.Value)
	}
	if len(wp.Stack) == 0 {
		t.Error("WorkerPanic.Stack is empty, want the faulted worker's stack")
	}
}

// TestPoolReusableAfterFault is the pool-after-fault contract the
// serving layer stands on: after a worker panic mid-ForChunksCtx the
// pool must remain dispatchable (no barrier deadlock), leak no
// goroutines, and the warm zero-allocation dispatch path must still
// be allocation-free.
func TestPoolReusableAfterFault(t *testing.T) {
	before := runtime.NumGoroutine()
	pl := NewPool(4)
	const n = 4096
	good := &panicProbe{trip: -1, visited: make([]int32, n)}
	warm := func() { pl.ForChunksCtx(n, 4, good, panicChunkBody) }
	warm() // first rendezvous

	// Fault it — repeatedly, so a wedged slot from one fault would
	// surface as a deadlock or fallback on the next.
	for i := 0; i < 5; i++ {
		bad := &panicProbe{trip: n / 2, visited: make([]int32, n)}
		mustPanicWorker(t, func() { pl.ForChunksCtx(n, 4, bad, panicChunkBody) })

		// The pool must serve the next dispatch on its resident workers
		// with every item visited exactly once.
		for j := range good.visited {
			good.visited[j] = 0
		}
		warm()
		for j, v := range good.visited {
			if v != 1 {
				t.Fatalf("after fault %d: item %d visited %d times, want 1", i, j, v)
			}
		}
	}

	// Warm path still allocation-free after the faults.
	if allocs := testing.AllocsPerRun(10, warm); allocs != 0 {
		t.Errorf("ForChunksCtx after faults: %v allocs/op, want 0", allocs)
	}

	pl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before pool, %d after faults and Close", before, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}

// barrierPanicCtx drives the round-synchronous containment test: every
// worker except the faulty one runs rounds barrier waits; the faulty
// worker panics before its first Wait.
type barrierPanicCtx struct {
	faulty int
	rounds int
	done   []int32
}

func barrierPanicWorker(ctx any, w int, b *Barrier) {
	bc := ctx.(*barrierPanicCtx)
	if w == bc.faulty {
		panic("injected: worker died before the barrier")
	}
	for r := 0; r < bc.rounds; r++ {
		b.Wait()
	}
	atomic.AddInt32(&bc.done[w], 1)
}

// TestPoolRunWorkersPanicAbandonsBarrier: a panicking participant of a
// round-synchronous job must abandon the barrier so its peers' Waits
// release — the fan-out quiesces, the fault is rethrown, and the pool
// serves the next round-synchronous job on a restored roster.
func TestPoolRunWorkersPanicAbandonsBarrier(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	for faulty := 0; faulty < 4; faulty++ {
		bc := &barrierPanicCtx{faulty: faulty, rounds: 3, done: make([]int32, 4)}
		fin := make(chan *WorkerPanic, 1)
		go func() {
			fin <- mustPanicWorker(t, func() { pl.RunWorkersCtx(4, bc, barrierPanicWorker) })
		}()
		select {
		case wp := <-fin:
			if wp.Value != "injected: worker died before the barrier" {
				t.Fatalf("faulty=%d: WorkerPanic.Value = %v", faulty, wp.Value)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("faulty=%d: barrier deadlocked after worker panic", faulty)
		}
		for w, d := range bc.done {
			if w != faulty && d != 1 {
				t.Errorf("faulty=%d: surviving worker %d did not complete its rounds", faulty, w)
			}
		}
		// Roster restored: a clean full-width job must complete.
		ok := &barrierPanicCtx{faulty: -1, rounds: 2, done: make([]int32, 4)}
		pl.RunWorkersCtx(4, ok, barrierPanicWorker)
		for w, d := range ok.done {
			if d != 1 {
				t.Fatalf("after fault: clean worker %d did not run", w)
			}
		}
	}
}

// TestFreeFanoutsContainPanics: the spawn-per-call fallbacks must
// contain worker panics exactly like the pool — an unrecovered panic
// on a spawned goroutine would kill the process.
func TestFreeFanoutsContainPanics(t *testing.T) {
	errBoom := errors.New("boom")
	wp := mustPanicWorker(t, func() {
		ForChunks(100, 4, func(_, lo, hi int) {
			if lo <= 50 && 50 < hi {
				panic(errBoom)
			}
		})
	})
	if !errors.Is(wp, errBoom) {
		t.Errorf("errors.Is through WorkerPanic = false, want true (Value %v)", wp.Value)
	}
	mustPanicWorker(t, func() {
		ForStrided(100, 4, func(_, i int) {
			if i == 37 {
				panic("strided boom")
			}
		})
	})
	mustPanicWorker(t, func() {
		RunWorkers(4, func(w int, b *Barrier) {
			if w == 2 {
				panic("worker boom")
			}
			b.Wait()
		})
	})
}

// TestNestedFaultNotDoubleWrapped: a panic contained by a nested
// (fallback) fan-out and rethrown into an outer pool worker must
// surface to the outer dispatcher as the original *WorkerPanic, not a
// wrapper of a wrapper.
func TestNestedFaultNotDoubleWrapped(t *testing.T) {
	pl := NewPool(2)
	defer pl.Close()
	wp := mustPanicWorker(t, func() {
		pl.ForChunks(2, 2, func(w, lo, hi int) {
			// The pool is busy with the outer dispatch, so this inner
			// fan-out falls back to spawning — and panics there.
			pl.ForChunks(2, 2, func(_, _, _ int) { panic("inner fault") })
		})
	})
	if wp.Value != "inner fault" {
		t.Fatalf("WorkerPanic.Value = %v, want the innermost panic value", wp.Value)
	}
}
