package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolForChunksMatchesFree: pooled chunked fan-out must visit
// exactly the items, chunks and worker indices the free function does,
// including when the job asks for more workers than the pool holds
// (the multiplexed path).
func TestPoolForChunksMatchesFree(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		pl := NewPool(procs)
		for _, p := range []int{1, 2, 4, 8, 13} {
			const n = 1000
			visited := make([]int32, n)
			var workers sync.Map
			pl.ForChunks(n, p, func(w, lo, hi int) {
				workers.Store(w, true)
				wantLo, wantHi := Chunk(n, Procs(p, n), w)
				if lo != wantLo || hi != wantHi {
					t.Errorf("procs=%d p=%d w=%d: chunk [%d,%d), want [%d,%d)", procs, p, w, lo, hi, wantLo, wantHi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visited[i], 1)
				}
			})
			for i, v := range visited {
				if v != 1 {
					t.Fatalf("procs=%d p=%d: index %d visited %d times", procs, p, i, v)
				}
			}
			distinct := 0
			workers.Range(func(k, _ any) bool {
				if k.(int) >= Procs(p, n) {
					t.Errorf("procs=%d p=%d: worker index %d out of range", procs, p, k.(int))
				}
				distinct++
				return true
			})
			if distinct != Procs(p, n) {
				t.Fatalf("procs=%d p=%d: %d distinct workers, want %d", procs, p, distinct, Procs(p, n))
			}
		}
		pl.Close()
	}
}

// TestPoolForStridedMatchesFree: the pooled strided assignment must be
// strip-mined exactly like the free function's (item i to worker
// i mod p), across pool sizes below and above the job width.
func TestPoolForStridedMatchesFree(t *testing.T) {
	for _, procs := range []int{1, 3, 8} {
		pl := NewPool(procs)
		n, p := 40, 4
		var mu sync.Mutex
		owner := make([]int, n)
		pl.ForStrided(n, p, func(w, i int) {
			mu.Lock()
			owner[i] = w
			mu.Unlock()
		})
		for i := 0; i < n; i++ {
			if owner[i] != i%p {
				t.Fatalf("procs=%d: item %d owned by worker %d, want %d", procs, i, owner[i], i%p)
			}
		}
		pl.Close()
	}
}

// TestPoolRunWorkersBarrier: pooled round-synchronous workers share a
// correct reusable barrier — every worker observes every increment of
// the round after the rendezvous — and the pool's round barrier must
// come back reusable for a dispatch of a different width.
func TestPoolRunWorkersBarrier(t *testing.T) {
	pl := NewPool(8)
	defer pl.Close()
	for _, workers := range []int{8, 3, 8, 2} {
		const rounds = 25
		var counter int64
		pl.RunWorkers(workers, func(w int, b *Barrier) {
			for r := 0; r < rounds; r++ {
				atomic.AddInt64(&counter, 1)
				b.Wait()
				if got := atomic.LoadInt64(&counter); got < int64((r+1)*workers) {
					t.Errorf("round %d: counter %d < %d", r, got, (r+1)*workers)
				}
				b.Wait()
			}
		})
		if counter != int64(workers*rounds) {
			t.Fatalf("workers=%d: counter = %d, want %d", workers, counter, workers*rounds)
		}
	}
}

// TestPoolRunWorkersOversubscribed: a barrier job wider than the pool
// cannot be multiplexed and must fall back to spawning, preserving
// exact RunWorkers semantics.
func TestPoolRunWorkersOversubscribed(t *testing.T) {
	pl := NewPool(2)
	defer pl.Close()
	const workers = 6
	var counter int64
	pl.RunWorkers(workers, func(w int, b *Barrier) {
		atomic.AddInt64(&counter, 1)
		b.Wait()
		if got := atomic.LoadInt64(&counter); got != workers {
			t.Errorf("worker %d: counter %d after barrier, want %d", w, got, workers)
		}
	})
}

// TestPoolNilAndClosedFallBack: a nil pool and a closed pool must both
// behave exactly like the free functions.
func TestPoolNilAndClosedFallBack(t *testing.T) {
	var nilPool *Pool
	closed := NewPool(4)
	closed.Close()
	closed.Close() // idempotent
	for name, pl := range map[string]*Pool{"nil": nilPool, "closed": closed} {
		var sum int64
		pl.ForChunks(100, 4, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&sum, int64(i))
			}
		})
		if sum != 99*100/2 {
			t.Fatalf("%s pool: sum = %d", name, sum)
		}
		var rounds int64
		pl.RunWorkers(3, func(w int, b *Barrier) {
			atomic.AddInt64(&rounds, 1)
			b.Wait()
		})
		if rounds != 3 {
			t.Fatalf("%s pool: %d workers ran", name, rounds)
		}
	}
}

// TestPoolNestedDispatchFallsBack: a fan-out issued from inside a body
// the same pool is running must not deadlock — the busy pool degrades
// the inner call to spawn-per-call.
func TestPoolNestedDispatchFallsBack(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	var total int64
	pl.ForChunks(4, 4, func(_, lo, hi int) {
		pl.ForChunks(100, 4, func(_, ilo, ihi int) {
			atomic.AddInt64(&total, int64(ihi-ilo))
		})
	})
	if total != 400 {
		t.Fatalf("nested fan-out covered %d items, want 400", total)
	}
}

// TestPoolConcurrentDispatchers hammers one pool from many goroutines:
// whoever wins the busy flag runs resident, everyone else spawns, and
// every result must stay correct.
func TestPoolConcurrentDispatchers(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	const goroutines = 8
	const calls = 50
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for c := 0; c < calls; c++ {
				var sum int64
				pl.ForChunks(257, 4, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt64(&sum, int64(i))
					}
				})
				if sum != 256*257/2 {
					t.Errorf("concurrent dispatch sum = %d", sum)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoolNoGoroutineLeak is the satellite's leak check: creating a
// pool, working it, and closing it must return the process to its
// previous goroutine count.
func TestPoolNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	pl := NewPool(8)
	for i := 0; i < 10; i++ {
		pl.ForChunks(1000, 8, func(_, lo, hi int) {})
		pl.RunWorkers(8, func(w int, b *Barrier) { b.Wait() })
	}
	pl.Close()
	// Close waits for worker exit, but the runtime may take a moment to
	// let exited goroutines leave the count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before pool, %d after Close", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestPoolCtxDispatchZeroAlloc is the layer-0 half of the engines'
// steady-state contract: a Ctx-form dispatch on a warm pool performs
// zero heap allocations (named body, pointer-shaped ctx, resident
// workers).
func TestPoolCtxDispatchZeroAlloc(t *testing.T) {
	pl := NewPool(4)
	defer pl.Close()
	ctx := &poolAllocProbe{items: make([]int64, 4096)}
	run := func() { pl.ForChunksCtx(len(ctx.items), 4, ctx, poolAllocBody) }
	run() // warm the pool's first rendezvous
	if allocs := testing.AllocsPerRun(10, run); allocs != 0 {
		t.Errorf("ForChunksCtx: %v allocs/op on a warm pool, want 0", allocs)
	}
	runW := func() { pl.RunWorkersCtx(4, ctx, poolAllocWorker) }
	runW()
	if allocs := testing.AllocsPerRun(10, runW); allocs != 0 {
		t.Errorf("RunWorkersCtx: %v allocs/op on a warm pool, want 0", allocs)
	}
}

type poolAllocProbe struct{ items []int64 }

func poolAllocBody(ctx any, w, lo, hi int) {
	items := ctx.(*poolAllocProbe).items
	for i := lo; i < hi; i++ {
		items[i]++
	}
}

func poolAllocWorker(ctx any, w int, b *Barrier) {
	_ = ctx.(*poolAllocProbe)
	b.Wait()
}

// BenchmarkFanout compares per-fan-out overhead: spawn-per-call (the
// free ForChunks) against pooled dispatch, across job widths. The body
// is deliberately tiny so the measurement is the fan-out machinery
// itself — the quantity the paper's §5 schedule holds to a constant
// number of synchronizations per problem.
func BenchmarkFanout(b *testing.B) {
	const n = 1 << 10
	items := make([]int64, n)
	body := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			items[i]++
		}
	}
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("spawn/p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ForChunks(n, p, body)
			}
		})
		b.Run(fmt.Sprintf("pool/p=%d", p), func(b *testing.B) {
			pl := NewPool(p)
			defer pl.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pl.ForChunks(n, p, body)
			}
		})
		b.Run(fmt.Sprintf("pool-ctx/p=%d", p), func(b *testing.B) {
			pl := NewPool(p)
			defer pl.Close()
			ctx := &poolAllocProbe{items: items}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pl.ForChunksCtx(n, p, ctx, poolAllocBody)
			}
		})
	}
}
