package serial

import (
	"testing"
	"testing/quick"

	"listrank/internal/list"
	"listrank/internal/rng"
)

func TestRanksMatchesReference(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 3, 17, 1000} {
		l := list.NewRandom(n, r)
		got := Ranks(l)
		want := l.Ranks()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d rank[%d]=%d want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestScanMatchesReference(t *testing.T) {
	r := rng.New(2)
	l := list.NewRandom(777, r)
	l.RandomValues(-100, 100, r)
	got := Scan(l)
	want := l.ExclusiveScan()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d]=%d want %d", i, got[i], want[i])
		}
	}
}

func TestScanOfOnesEqualsRanks(t *testing.T) {
	f := func(seed uint64, nn uint16) bool {
		n := int(nn%5000) + 1
		l := list.NewRandom(n, rng.New(seed))
		ranks := Ranks(l)
		scan := Scan(l)
		for i := range ranks {
			if ranks[i] != scan[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestScanOpAddition(t *testing.T) {
	r := rng.New(3)
	l := list.NewRandom(512, r)
	l.RandomValues(-9, 9, r)
	add := func(a, b int64) int64 { return a + b }
	got := ScanOp(l, add, 0)
	want := Scan(l)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanOp(+) differs at %d", i)
		}
	}
}

func TestScanOpMax(t *testing.T) {
	r := rng.New(4)
	l := list.NewRandom(256, r)
	l.RandomValues(-1000, 1000, r)
	maxOp := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	const negInf = int64(-1 << 62)
	got := ScanOp(l, maxOp, negInf)
	// Reference: walk the list tracking running max.
	acc := negInf
	v := l.Head
	for {
		if got[v] != acc {
			t.Fatalf("max-scan[%d] = %d want %d", v, got[v], acc)
		}
		if l.Value[v] > acc {
			acc = l.Value[v]
		}
		if l.Next[v] == v {
			break
		}
		v = l.Next[v]
	}
}

// affineCompose interprets int64 values as packed affine maps
// x -> a*x + b with a in the high 32 bits and b in the low 32 bits
// (both small, to avoid overflow), and composes them. Composition of
// affine maps is associative but NOT commutative, which exercises the
// operand-order guarantees of ScanOp.
func affineCompose(f, g int64) int64 {
	fa, fb := f>>32, int64(int32(f))
	ga, gb := g>>32, int64(int32(g))
	// (g ∘ f)(x) = ga*(fa*x+fb)+gb applied after f... we define scan
	// left-to-right: result = earlier-then-later, i.e. apply f first.
	a := (ga * fa) % 9973
	b := (ga*fb + gb) % 9973
	return a<<32 | (b & 0xffffffff)
}

func packAffine(a, b int64) int64 { return a<<32 | (b & 0xffffffff) }

func TestScanOpNonCommutative(t *testing.T) {
	r := rng.New(5)
	l := list.NewRandom(300, r)
	for i := range l.Value {
		l.Value[i] = packAffine(int64(r.Intn(7)+1), int64(r.Intn(50)))
	}
	identity := packAffine(1, 0)
	got := ScanOp(l, affineCompose, identity)
	// Reference left fold in list order.
	acc := identity
	v := l.Head
	for {
		if got[v] != acc {
			t.Fatalf("affine scan at vertex %d = %#x want %#x", v, got[v], acc)
		}
		acc = affineCompose(acc, l.Value[v])
		if l.Next[v] == v {
			break
		}
		v = l.Next[v]
	}
}

func TestIntoVariantsReuseStorage(t *testing.T) {
	l := list.NewRandom(100, rng.New(6))
	dst := make([]int64, 100)
	RanksInto(dst, l)
	want := l.Ranks()
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("RanksInto mismatch at %d", i)
		}
	}
	ScanInto(dst, l)
	wantScan := l.ExclusiveScan()
	for i := range wantScan {
		if dst[i] != wantScan[i] {
			t.Fatalf("ScanInto mismatch at %d", i)
		}
	}
}

func BenchmarkRanks1M(b *testing.B) {
	l := list.NewRandom(1<<20, rng.New(1))
	dst := make([]int64, l.Len())
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RanksInto(dst, l)
	}
}

func BenchmarkScan1M(b *testing.B) {
	l := list.NewRandom(1<<20, rng.New(1))
	dst := make([]int64, l.Len())
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScanInto(dst, l)
	}
}

func BenchmarkRanksOrdered1M(b *testing.B) {
	// Cache-friendly layout: the analogue of the Alpha "cache" column.
	l := list.NewOrdered(1 << 20)
	dst := make([]int64, l.Len())
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RanksInto(dst, l)
	}
}
