// Package serial implements the sequential list-ranking and list-scan
// algorithms (paper §2.1). The serial algorithm simply walks down the
// list accumulating values; it is the work baseline every parallel
// algorithm is compared against (Table II: O(n) time, O(n) work, small
// constants, constant extra space) and it is also used as the Phase 2
// solver of the sublist algorithm when the reduced list is short.
package serial

import "listrank/internal/list"

// Ranks returns, for each vertex of l, the number of vertices that
// precede it in the list.
func Ranks(l *list.List) []int64 {
	out := make([]int64, l.Len())
	RanksInto(out, l)
	return out
}

// RanksInto writes the ranks of l into dst, which must have length
// l.Len(). It allows callers to reuse result storage across runs.
func RanksInto(dst []int64, l *list.List) {
	v := l.Head
	next := l.Next
	var rank int64
	for {
		dst[v] = rank
		rank++
		n := next[v]
		if n == v {
			return
		}
		v = n
	}
}

// Scan returns the exclusive list scan of l under integer addition:
// out[v] is the sum of the values of all vertices strictly preceding v.
func Scan(l *list.List) []int64 {
	out := make([]int64, l.Len())
	ScanInto(out, l)
	return out
}

// ScanInto writes the exclusive scan of l into dst, which must have
// length l.Len().
func ScanInto(dst []int64, l *list.List) {
	v := l.Head
	next, value := l.Next, l.Value
	var sum int64
	for {
		dst[v] = sum
		sum += value[v]
		n := next[v]
		if n == v {
			return
		}
		v = n
	}
}

// ScanOp returns the exclusive list scan of l under an arbitrary
// associative operator op with the given identity. The head receives
// identity, and every other vertex receives
// op(value[v1], op(value[v2], …)) over the strictly preceding vertices
// v1, v2, … in list order (combined left to right, so op need not be
// commutative).
func ScanOp(l *list.List, op func(a, b int64) int64, identity int64) []int64 {
	out := make([]int64, l.Len())
	ScanOpInto(out, l, op, identity)
	return out
}

// ScanOpInto is ScanOp writing into caller-provided storage.
func ScanOpInto(dst []int64, l *list.List, op func(a, b int64) int64, identity int64) {
	v := l.Head
	next, value := l.Next, l.Value
	acc := identity
	for {
		dst[v] = acc
		acc = op(acc, value[v])
		n := next[v]
		if n == v {
			return
		}
		v = n
	}
}
