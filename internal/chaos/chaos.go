// Package chaos is the fault-injection harness behind the serving
// layer's crash-safety tests. Production code calls Point at
// interesting places — pool worker bodies, the engine's phase
// boundaries, kernel chunk strips — and a chaos-enabled build
// (`go test -tags chaos`) can arm those points to panic or stall,
// driving the soak test that proves the submit→serve→recycle cycle
// contains faults instead of deadlocking or crashing (no strand is
// ever more than one contained panic away from a served ticket).
//
// Without the `chaos` build tag every hook in this package compiles to
// an empty, inlinable function, so the hooks cost nothing in
// production binaries — the same discipline as the kernel package's
// bounds-check accounting: the safety machinery must not tax the
// steady state it protects.
//
// The four fault families the harness covers:
//
//   - corrupt-a-link: driven by the soak test's traffic (a request
//     whose succ array holds an out-of-range link), exercising the
//     kernel guard → worker recover → dispatch slot → ticket error
//     containment chain. No hook needed; the input is the fault.
//   - delay-a-worker: ArmDelay on the "par.worker" point stalls pool
//     workers, exercising slow-worker barrier and coalescing paths.
//   - panic-at-phase-K: ArmPanic on a "core.phaseK" point panics the
//     engine mid-run, exercising orchestrator-level containment and
//     setup/restore unwinding.
//   - queue-full bursts: driven by the soak test's open-throttle
//     submission against a small admission queue. No hook needed.
package chaos

// Names of the hook points compiled into the runtime and engine, for
// use with ArmPanic / ArmDelay. Keeping them in one place (and in the
// untagged file) lets chaos tests reference them without stringly
// drift, and documents where the fault surface is.
const (
	// PointWorker fires in every pool/spawn fan-out worker body, once
	// per dispatch per worker (internal/par).
	PointWorker = "par.worker"
	// PointPhase1, PointPhase2, PointPhase3 fire on the orchestrating
	// goroutine at the engine's phase boundaries (internal/core).
	PointPhase1 = "core.phase1"
	PointPhase2 = "core.phase2"
	PointPhase3 = "core.phase3"
	// PointChunk fires between kernel chunk strips on whatever worker
	// is chasing that strip — faults here surface through the worker
	// containment path rather than the orchestrator's (internal/core).
	PointChunk = "core.chunk"
)

// Fault is the value an armed panic point panics with. Keeping a
// dedicated type lets containment tests assert the injected fault —
// and nothing else — reached the recover site.
type Fault struct {
	// Point is the hook point that fired.
	Point string
}

// Error makes an injected fault classifiable through the usual error
// chain once containment wraps it.
func (f Fault) Error() string { return "chaos: injected fault at " + f.Point }
