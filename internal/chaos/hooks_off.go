//go:build !chaos

package chaos

import "time"

// Enabled reports whether fault injection is compiled in.
func Enabled() bool { return false }

// Point is a fault-injection hook. Without the chaos build tag it is
// an empty, inlinable no-op: the production hot paths that call it
// (pool worker bodies, phase boundaries, kernel strips) pay nothing.
func Point(string) {}

// ArmPanic, ArmDelay, Disarm and Fired are inert without the tag;
// arming in a production build is silently a no-op so shared test
// helpers can run under both builds.
func ArmPanic(string, uint64)                {}
func ArmDelay(string, time.Duration, uint64) {}
func Disarm()                                {}
func Fired(string) int64                     { return 0 }
