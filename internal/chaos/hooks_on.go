//go:build chaos

package chaos

import (
	"sync"
	"sync/atomic"
	"time"
)

// Enabled reports whether fault injection is compiled in.
func Enabled() bool { return true }

// fault is one armed hook point. Hit counting is atomic so Point can
// be called from any worker; the every'th hit fires.
type fault struct {
	every uint64 // fire on every N-th hit (≥ 1)
	delay time.Duration
	hits  atomic.Uint64
	fired atomic.Int64
}

var (
	mu    sync.RWMutex
	armed = map[string]*fault{}
)

// ArmPanic arms hook point name to panic with a Fault on every
// every'th hit (every ≤ 1 means every hit). Re-arming replaces the
// previous fault and resets its counters.
func ArmPanic(name string, every uint64) { arm(name, every, 0) }

// ArmDelay arms hook point name to sleep for d on every every'th hit.
func ArmDelay(name string, d time.Duration, every uint64) { arm(name, every, d) }

func arm(name string, every uint64, d time.Duration) {
	if every < 1 {
		every = 1
	}
	mu.Lock()
	armed[name] = &fault{every: every, delay: d}
	mu.Unlock()
}

// Disarm removes every armed fault.
func Disarm() {
	mu.Lock()
	armed = map[string]*fault{}
	mu.Unlock()
}

// Fired reports how many times the fault armed at name has fired.
func Fired(name string) int64 {
	mu.RLock()
	f := armed[name]
	mu.RUnlock()
	if f == nil {
		return 0
	}
	return f.fired.Load()
}

// Point fires the fault armed at name, if any is due: a panic for
// ArmPanic points (to be contained by the layer under test), a sleep
// for ArmDelay points.
func Point(name string) {
	mu.RLock()
	f := armed[name]
	mu.RUnlock()
	if f == nil {
		return
	}
	if f.hits.Add(1)%f.every != 0 {
		return
	}
	f.fired.Add(1)
	if f.delay > 0 {
		time.Sleep(f.delay)
		return
	}
	panic(Fault{Point: name})
}
