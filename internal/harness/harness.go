// Package harness regenerates every table and figure of the paper's
// evaluation: Table I (asymptotic ns/vertex across machines), Table II
// (algorithm comparison), Fig. 1 (per-vertex times of all five
// algorithms on one processor), Fig. 3 (relative speedups), Fig. 9
// (sublist-length order statistics), Fig. 10 (the optimal pack
// schedule against g(x)), Fig. 11 (per-vertex times across processor
// counts), plus the §4.4 model-validation experiment and a
// goroutine-track wall-clock sweep that has no paper counterpart.
//
// Every runner validates each algorithm's output against the serial
// reference before reporting its time, so a reported number can never
// come from a wrong answer.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"listrank/internal/alpha"
	"listrank/internal/core"
	"listrank/internal/list"
	"listrank/internal/model"
	"listrank/internal/randmate"
	"listrank/internal/rng"
	"listrank/internal/sched"
	"listrank/internal/serial"
	"listrank/internal/stats"
	"listrank/internal/vecalg"
	"listrank/internal/vm"
	"listrank/internal/wyllie"
)

// Table is a rendered experiment result: a titled grid with notes.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV (no quoting needed: cells are
// numbers and simple identifiers).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// checkEqual panics with a diagnostic if two result vectors differ;
// harness runs must never report timings for wrong answers.
func checkEqual(got, want []int64, what string) {
	for i := range want {
		if got[i] != want[i] {
			panic(fmt.Sprintf("harness: %s produced a wrong result at vertex %d: %d != %d", what, i, got[i], want[i]))
		}
	}
}

// simC90 builds a machine, loads l, runs f, validates against want,
// and returns ns/vertex.
func simC90(l *list.List, procs int, want []int64, what string, f func(in *vecalg.Input)) float64 {
	cfg := vm.CrayC90()
	cfg.Procs = procs
	mach := vm.New(cfg, 16*l.Len()+4096)
	in := vecalg.Load(mach, l)
	f(in)
	checkEqual(in.OutSlice(), want, what)
	return mach.Nanoseconds() / float64(l.Len())
}

// TableI reproduces Table I: asymptotic ns/vertex for list rank and
// list scan on the DEC Alpha (cache and memory), the C90 serial
// algorithm, and the vectorized sublist algorithm on 1, 2, 4 and 8
// processors. nBig is the "asymptotic" list length (the paper used
// multi-million-vertex lists; 2^20 reproduces the same asymptotes).
func TableI(nBig int, seed uint64) *Table {
	r := rng.New(seed)
	big := list.NewRandom(nBig, r)
	small := list.NewRandom(1<<13, r) // fits the Alpha's 2MB cache
	ws := alpha.DEC3000600()

	wantRankBig := big.Ranks()
	wantScanBig := big.ExclusiveScan()

	rank := []string{"List rank"}
	scan := []string{"List scan"}

	// Alpha cache: warm runs on the small list.
	_, ns := ws.RankWarm(small)
	rank = append(rank, f1(ns/float64(small.Len())))
	_, ns = ws.ScanWarm(small)
	scan = append(scan, f1(ns/float64(small.Len())))
	// Alpha memory: cold runs on the big list.
	outA, nsA := ws.Rank(big)
	checkEqual(outA, wantRankBig, "alpha rank")
	rank = append(rank, f1(nsA/float64(nBig)))
	outA, nsA = ws.Scan(big)
	checkEqual(outA, wantScanBig, "alpha scan")
	scan = append(scan, f1(nsA/float64(nBig)))

	// C90 serial.
	rank = append(rank, f1(simC90(big, 1, wantRankBig, "c90 serial rank", vecalg.SerialRank)))
	scan = append(scan, f1(simC90(big, 1, wantScanBig, "c90 serial scan", vecalg.SerialScan)))

	// C90 vectorized, 1/2/4/8 processors, per-count tuned parameters.
	for _, p := range []int{1, 2, 4, 8} {
		cfg := vm.CrayC90()
		pr := vecalg.FromTunedP(nBig, p, cfg.ContentionFor(p), seed)
		rank = append(rank, f1(simC90(big, p, wantRankBig, "c90 sublist rank",
			func(in *vecalg.Input) { vecalg.SublistRank(in, pr) })))
		scan = append(scan, f1(simC90(big, p, wantScanBig, "c90 sublist scan",
			func(in *vecalg.Input) { vecalg.SublistScan(in, pr) })))
	}

	return &Table{
		Title:   fmt.Sprintf("Table I: asymptotic ns/vertex (n=%d)", nBig),
		Columns: []string{"Algorithm", "Alpha cache", "Alpha memory", "C90 serial", "Vectorized", "2 proc", "4 proc", "8 proc"},
		Rows:    [][]string{rank, scan},
		Notes: []string{
			"paper: rank 98 690 177 21.3 10.9 5.8 3.1; scan 200 990 183 30.8 16.1 8.5 4.6",
		},
	}
}

// TableII reproduces Table II: the algorithm comparison. The time,
// work and space columns are the paper's analytic facts; the constants
// column is measured on the simulated machine at the given length as
// cycles/vertex, replacing the paper's qualitative small/medium/large.
func TableII(n int, seed uint64) *Table {
	r := rng.New(seed)
	l := list.NewRandom(n, r)
	want := l.ExclusiveScan()

	serialPer := simC90(l, 1, want, "serial", vecalg.SerialScan)
	wylliePer := simC90(l, 1, want, "wyllie", vecalg.WyllieScan)
	mrPer := simC90(l, 1, want, "miller-reif", func(in *vecalg.Input) { vecalg.MillerReifScan(in, seed) })
	amPer := simC90(l, 1, want, "anderson-miller", func(in *vecalg.Input) { vecalg.AndersonMillerScan(in, seed, 128) })
	pr := vecalg.FromTuned(n, seed)
	ourPer := simC90(l, 1, want, "sublist", func(in *vecalg.Input) { vecalg.SublistScan(in, pr) })

	return &Table{
		Title:   fmt.Sprintf("Table II: list-ranking algorithms (measured constants at n=%d, 1 C90 proc)", n),
		Columns: []string{"Algorithm", "Time", "Work", "Measured ns/vertex", "Space beyond list"},
		Rows: [][]string{
			{"Serial", "O(n)", "O(n)", f1(serialPer), "c"},
			{"Wyllie", "O((n log n)/p + log n)", "O(n log n)", f1(wylliePer), "n+c"},
			{"Miller-Reif", "O(n/p + log n)", "O(n)", f1(mrPer), ">2n"},
			{"Anderson-Miller", "O(n/p + log n)", "O(n)", f1(amPer), ">2n"},
			{"Ours", "O(n/p + log^2 n)", "O(n)", f1(ourPer), "5p+c"},
		},
		Notes: []string{"paper gives qualitative constants: serial small, Wyllie small, randomized medium, optimal very large, ours small"},
	}
}

// Fig1 reproduces Fig. 1: execution time per vertex of the five
// list-scan algorithms on one simulated C90 processor, across list
// lengths.
func Fig1(lengths []int, seed uint64) *Table {
	tb := &Table{
		Title:   "Fig. 1: list-scan ns/vertex on one C90 processor",
		Columns: []string{"n", "serial", "wyllie", "miller-reif", "anderson-miller", "ours"},
		Notes: []string{
			"paper shape: Wyllie sawtooth wins below n~1000; ours wins beyond; MR ~20x ours; AM ~3x faster than MR",
		},
	}
	r := rng.New(seed)
	for _, n := range lengths {
		l := list.NewRandom(n, r)
		want := l.ExclusiveScan()
		pr := vecalg.FromTuned(n, seed)
		row := []string{fmt.Sprint(n),
			f1(simC90(l, 1, want, "serial", vecalg.SerialScan)),
			f1(simC90(l, 1, want, "wyllie", vecalg.WyllieScan)),
			f1(simC90(l, 1, want, "miller-reif", func(in *vecalg.Input) { vecalg.MillerReifScan(in, seed) })),
			f1(simC90(l, 1, want, "anderson-miller", func(in *vecalg.Input) { vecalg.AndersonMillerScan(in, seed, 128) })),
			f1(simC90(l, 1, want, "ours", func(in *vecalg.Input) { vecalg.SublistScan(in, pr) })),
		}
		tb.Rows = append(tb.Rows, row)
	}
	return tb
}

// Fig3 reproduces Fig. 3: relative speedup of the sublist list scan
// over its own one-processor time, for several list lengths.
func Fig3(lengths []int, procs []int, seed uint64) *Table {
	cols := []string{"n"}
	for _, p := range procs {
		cols = append(cols, fmt.Sprintf("%dp", p))
	}
	tb := &Table{
		Title:   "Fig. 3: relative speedup of our list scan on the C90",
		Columns: cols,
		Notes:   []string{"paper shape: near-linear for long lists, degrading with p (shared memory bandwidth); poor for short lists"},
	}
	r := rng.New(seed)
	cfg := vm.CrayC90()
	for _, n := range lengths {
		l := list.NewRandom(n, r)
		want := l.ExclusiveScan()
		base := 0.0
		row := []string{fmt.Sprint(n)}
		for _, p := range procs {
			pr := vecalg.FromTunedP(n, p, cfg.ContentionFor(p), seed)
			ns := simC90(l, p, want, "ours", func(in *vecalg.Input) { vecalg.SublistScan(in, pr) })
			if p == 1 {
				base = ns
			}
			row = append(row, f2(base/ns))
		}
		tb.Rows = append(tb.Rows, row)
	}
	return tb
}

// Fig9 reproduces Fig. 9: expected versus observed length of the j-th
// shortest sublist for n=10000 and several m, with min/avg/max over
// the given number of samples.
func Fig9(n int, ms []int, samples int, seed uint64) *Table {
	tb := &Table{
		Title:   fmt.Sprintf("Fig. 9: j-th shortest sublist length, n=%d, %d samples", n, samples),
		Columns: []string{"m", "j", "expected", "min", "avg", "max"},
		Notes:   []string{"expected from the exponential approximation Exp(L_(j)) = -(n/m) ln((m-j+0.5)/(m+1))"},
	}
	r := rng.New(seed)
	for _, m := range ms {
		// Sample the order statistics.
		obs := make([][]float64, m+1)
		for s := 0; s < samples; s++ {
			gaps := stats.SampleGaps(n, m, r.Intn)
			for j, g := range gaps {
				obs[j] = append(obs[j], float64(g))
			}
		}
		for _, j := range []int{0, m / 4, m / 2, 3 * m / 4, m} {
			sm := stats.Summarize(obs[j])
			tb.Rows = append(tb.Rows, []string{
				fmt.Sprint(m), fmt.Sprint(j),
				f1(stats.ExpectedOrderedLength(n, m, j)),
				f1(sm.Min), f1(sm.Mean), f1(sm.Max),
			})
		}
	}
	return tb
}

// Fig10 reproduces Fig. 10: the optimal load-balancing schedule for
// n=10000, m=199 against the expected-active curve g(x).
func Fig10(n, m int) *Table {
	c := model.PaperConstants()
	s1, schedule := sched.OptimizeS1(n, m, sched.Phase1C90(), c.InitialScan.B, c.InitialPack.B)
	tb := &Table{
		Title:   fmt.Sprintf("Fig. 10: optimal pack schedule, n=%d, m=%d (S1=%.0f, %d packs)", n, m, s1, len(schedule)),
		Columns: []string{"i", "S_i", "g(S_i) expected active", "step width"},
		Notes: []string{
			"paper setting: 11 load balances minimize expected time; spacing widens with i",
		},
	}
	prev := 0
	for i, s := range schedule {
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprint(i + 1), fmt.Sprint(s),
			f1(stats.G(float64(s), n, m)),
			fmt.Sprint(s - prev),
		})
		prev = s
	}
	return tb
}

// Fig11 reproduces Fig. 11: ns/vertex of the sublist list scan across
// list lengths on 1, 2, 4 and 8 simulated processors. The final row's
// 1-processor value approaches the asymptote (paper: 7.4 cycles =
// 31 ns/vertex for scan).
func Fig11(lengths []int, seed uint64) *Table {
	tb := &Table{
		Title:   "Fig. 11: our list-scan ns/vertex on 1, 2, 4, 8 C90 processors",
		Columns: []string{"n", "1p", "2p", "4p", "8p"},
		Notes:   []string{"paper asymptotes: 31.1, 16.4, 8.4, 4.6 ns/vertex (7.4, 3.9, 2.0, 1.1 cycles)"},
	}
	r := rng.New(seed)
	cfg := vm.CrayC90()
	for _, n := range lengths {
		l := list.NewRandom(n, r)
		want := l.ExclusiveScan()
		row := []string{fmt.Sprint(n)}
		for _, p := range []int{1, 2, 4, 8} {
			pr := vecalg.FromTunedP(n, p, cfg.ContentionFor(p), seed)
			row = append(row, f1(simC90(l, p, want, "ours", func(in *vecalg.Input) { vecalg.SublistScan(in, pr) })))
		}
		tb.Rows = append(tb.Rows, row)
	}
	return tb
}

// ModelValidation reproduces the §4.4 check: the detailed Eq. 3
// prediction tracks the simulated execution, and the closed-form
// Eq. 5 overestimates it.
func ModelValidation(lengths []int, seed uint64) *Table {
	tb := &Table{
		Title:   "Model validation (§4.4): predicted vs simulated cycles/vertex, 1 processor",
		Columns: []string{"n", "tuned m", "tuned S1", "Eq.3 predict", "simulated", "Eq.5 bound"},
		Notes:   []string{"paper: Eq. 3 accurately predicts, Eq. 5 overestimates"},
	}
	c := model.PaperConstants()
	r := rng.New(seed)
	for _, n := range lengths {
		tn := c.Tune(n)
		l := list.NewRandom(n, r)
		want := l.ExclusiveScan()
		pr := vecalg.SublistParams{M: tn.M, Schedule1: tn.Schedule1, Schedule3: tn.Schedule3, Seed: seed}
		cfg := vm.CrayC90()
		mach := vm.New(cfg, 16*n+4096)
		in := vecalg.Load(mach, l)
		vecalg.SublistScan(in, pr)
		checkEqual(in.OutSlice(), want, "model validation run")
		sim := mach.Makespan() / float64(n)
		eq5 := model.PredictEq5(n, tn.M, tn.S1, len(tn.Schedule1)) / float64(n)
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(tn.M), fmt.Sprint(tn.S1),
			f2(tn.PerVertex), f2(sim), f2(eq5),
		})
	}
	return tb
}

// GoroutineTrack measures real wall-clock ns/vertex for the goroutine
// implementations on the host machine — the modern-hardware companion
// to Table I, with no paper counterpart.
func GoroutineTrack(lengths []int, procs []int, seed uint64) *Table {
	cols := []string{"n", "serial", "wyllie-1p", "miller-reif", "anderson-miller"}
	for _, p := range procs {
		cols = append(cols, fmt.Sprintf("ours-%dp", p))
	}
	tb := &Table{
		Title:   "Goroutine track: measured wall-clock ns/vertex on this host",
		Columns: cols,
	}
	r := rng.New(seed)
	timeIt := func(f func()) float64 {
		start := time.Now()
		f()
		return float64(time.Since(start).Nanoseconds())
	}
	for _, n := range lengths {
		l := list.NewRandom(n, r)
		want := serial.Scan(l)
		fn := float64(n)
		row := []string{fmt.Sprint(n)}
		var out []int64
		row = append(row, f1(timeIt(func() { out = serial.Scan(l) })/fn))
		checkEqual(out, want, "serial")
		row = append(row, f1(timeIt(func() { out = wyllie.Scan(l) })/fn))
		checkEqual(out, want, "wyllie")
		row = append(row, f1(timeIt(func() { out = randmate.MillerReifScan(l, randmate.Options{Seed: seed}) })/fn))
		checkEqual(out, want, "miller-reif")
		row = append(row, f1(timeIt(func() { out = randmate.AndersonMillerScan(l, randmate.Options{Seed: seed}) })/fn))
		checkEqual(out, want, "anderson-miller")
		for _, p := range procs {
			row = append(row, f1(timeIt(func() { out = core.Scan(l, core.Options{Seed: seed, Procs: p}) })/fn))
			checkEqual(out, want, fmt.Sprintf("ours-%dp", p))
		}
		tb.Rows = append(tb.Rows, row)
	}
	return tb
}

// MachineComparison runs the sublist list scan on the calibrated C90
// and the estimated Y-MP configuration — a what-if the paper's
// conclusions invite ("multiprocessor systems are moving to higher
// bandwidths"; the C90 roughly doubled its predecessor's vector
// throughput).
func MachineComparison(n int, seed uint64) *Table {
	r := rng.New(seed)
	l := list.NewRandom(n, r)
	want := l.ExclusiveScan()
	pr := vecalg.FromTuned(n, seed)
	tb := &Table{
		Title:   fmt.Sprintf("Machine comparison: sublist list scan, n=%d, 1 processor", n),
		Columns: []string{"machine", "cycles/vertex", "ns/vertex"},
		Notes:   []string{"the Y-MP configuration is an estimate (slower clock, one load port, slower gather), not a calibration"},
	}
	for _, cfg := range []vm.Config{vm.CrayC90(), vm.CrayYMP()} {
		mach := vm.New(cfg, 16*n+4096)
		in := vecalg.Load(mach, l)
		vecalg.SublistScan(in, pr)
		checkEqual(in.OutSlice(), want, cfg.Name)
		tb.Rows = append(tb.Rows, []string{
			cfg.Name,
			f2(mach.Makespan() / float64(n)),
			f1(mach.Nanoseconds() / float64(n)),
		})
	}
	return tb
}
