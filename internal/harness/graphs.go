package harness

import (
	"fmt"
	"time"

	"listrank/graph"
	"listrank/internal/alpha"
	"listrank/internal/vecalg"
	"listrank/internal/vm"
)

// graphFamilies builds the workload families of the prior
// implementation studies the paper cites (meshes for Lumetta et al.,
// sparse random graphs for Greiner, trees as the depth adversary).
func graphFamilies(scale int) []struct {
	name string
	g    *graph.Graph
} {
	side := 1
	for side*side < scale {
		side++
	}
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"mesh", graph.Grid(side, side)},
		{"gnm(m=2n)", graph.RandomGNM(scale, 2*scale, 1001)},
		{"path", graph.Path(scale)},
		{"tree", graph.RandomTree(scale, 1002)},
	}
}

// Connectivity compares the connected-components algorithms — two
// serial baselines and the two parallel ones built from the paper's
// techniques (pointer jumping; random-mate contraction) — across
// graph families, validating every labeling against the DFS
// reference. This is the experiment the implementation studies cited
// in §1 ran on their hardware; EXPERIMENTS.md discusses how our
// goroutine-track shape relates to their findings.
func Connectivity(scale int, procs []int, seed uint64) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Connected components, goroutine track (n≈%d)", scale),
		Columns: []string{"graph", "n", "edges", "algorithm", "procs", "ms", "ns/edge", "vs union-find"},
		Notes: []string{
			"Every labeling validated against serial DFS before timing is reported.",
			"hook-shortcut = atomic-min hooking + pointer-jump shortcut (Shiloach-Vishkin family).",
			"random-mate = Miller-Reif-style coin-flip contraction with per-round edge packing.",
		},
	}
	for _, fam := range graphFamilies(scale) {
		want := graph.ConnectedComponents(fam.g, graph.CCOptions{Algorithm: graph.CCSerialDFS})
		base := 0.0
		type cfg struct {
			algo graph.CCAlgorithm
			p    int
		}
		cfgs := []cfg{{graph.CCSerialDFS, 1}, {graph.CCUnionFind, 1}}
		for _, p := range procs {
			cfgs = append(cfgs, cfg{graph.CCHookShortcut, p}, cfg{graph.CCRandomMate, p})
		}
		for _, c := range cfgs {
			opt := graph.CCOptions{Algorithm: c.algo, Procs: c.p, Seed: seed}
			start := time.Now()
			got := graph.ConnectedComponents(fam.g, opt)
			el := time.Since(start)
			if got.Count != want.Count {
				panic(fmt.Sprintf("connectivity: %s/%s wrong component count", fam.name, c.algo))
			}
			for v := range want.Label {
				if got.Label[v] != want.Label[v] {
					panic(fmt.Sprintf("connectivity: %s/%s wrong labels", fam.name, c.algo))
				}
			}
			ms := float64(el.Microseconds()) / 1000
			if c.algo == graph.CCUnionFind {
				base = ms
			}
			ratio := "—"
			if base > 0 && c.algo != graph.CCUnionFind && c.algo != graph.CCSerialDFS {
				ratio = fmt.Sprintf("%.2fx", ms/base)
			}
			t.Rows = append(t.Rows, []string{
				fam.name,
				fmt.Sprint(fam.g.Len()),
				fmt.Sprint(fam.g.NumEdges()),
				c.algo.String(),
				fmt.Sprint(c.p),
				f2(ms),
				f1(float64(el.Nanoseconds()) / float64(max(fam.g.NumEdges(), 1))),
				ratio,
			})
		}
	}
	return t
}

// Biconnectivity compares the parallel Tarjan-Vishkin reduction —
// spanning forest by random mate, rooting and preorder by Euler-tour
// list ranking, blocks by pointer-jumping connectivity — against the
// serial Hopcroft-Tarjan baseline, reporting the structural counts
// alongside the times.
func Biconnectivity(scale int, procs []int, seed uint64) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Biconnected components (n≈%d)", scale),
		Columns: []string{"graph", "n", "edges", "algorithm", "procs", "ms", "blocks", "bridges", "artic."},
		Notes: []string{
			"tarjan-vishkin chains five consumers of the library's primitives;",
			"its block structure is validated cell-for-cell against hopcroft-tarjan.",
		},
	}
	for _, fam := range graphFamilies(scale) {
		want, err := graph.BiconnectedComponents(fam.g, graph.BiconnOptions{Algorithm: graph.BiconnSerialDFS})
		if err != nil {
			panic(err)
		}
		type cfg struct {
			algo graph.BiconnAlgorithm
			p    int
		}
		cfgs := []cfg{{graph.BiconnSerialDFS, 1}}
		for _, p := range procs {
			cfgs = append(cfgs, cfg{graph.BiconnTarjanVishkin, p})
		}
		for _, c := range cfgs {
			start := time.Now()
			got, err := graph.BiconnectedComponents(fam.g, graph.BiconnOptions{Algorithm: c.algo, Procs: c.p, Seed: seed})
			if err != nil {
				panic(err)
			}
			el := time.Since(start)
			bridges, arts := 0, 0
			for i := range got.EdgeBlock {
				if got.EdgeBlock[i] != want.EdgeBlock[i] {
					panic(fmt.Sprintf("biconnectivity: %s/%s wrong blocks", fam.name, c.algo))
				}
				if got.Bridge[i] {
					bridges++
				}
			}
			for _, a := range got.Articulation {
				if a {
					arts++
				}
			}
			t.Rows = append(t.Rows, []string{
				fam.name,
				fmt.Sprint(fam.g.Len()),
				fmt.Sprint(fam.g.NumEdges()),
				c.algo.String(),
				fmt.Sprint(c.p),
				f2(float64(el.Microseconds()) / 1000),
				fmt.Sprint(got.NumBlocks),
				fmt.Sprint(bridges),
				fmt.Sprint(arts),
			})
		}
	}
	return t
}

// ConnectivityC90 asks the paper's §1 claim of the graph level: list
// ranking needed the C90's memory bandwidth to win — does connected
// components? One processor of the simulated machine runs the scalar
// union-find baseline (dependent loads at the calibrated chase rate)
// against the vectorized random-mate contraction (pipelined gathers,
// §3-style edge packing), the same serial-versus-vector contest as
// Fig. 1.
func ConnectivityC90(scale int, seed uint64) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Connected components across the modeled machines (n≈%d)", scale),
		Columns: []string{"graph", "n", "edges", "program", "procs", "cycles/edge", "ns/edge", "rounds", "speedup"},
		Notes: []string{
			"Labels validated against union-find on every run.",
			"Vector program: in-register hash coins, masked hook scatter, gather relabel, §3 pack.",
			"Alpha row: union-find on the modeled DEC 3000/600 with its cache simulator.",
		},
	}
	for _, fam := range graphFamilies(scale) {
		n := fam.g.Len()
		edges := make([][2]int32, fam.g.NumEdges())
		for i := range edges {
			u, v := fam.g.Edge(i)
			edges[i] = [2]int32{int32(u), int32(v)}
		}
		want := graph.ConnectedComponents(fam.g, graph.CCOptions{Algorithm: graph.CCUnionFind})

		check := func(in *vecalg.GraphInput, what string) {
			got := in.Labels()
			for v := range got {
				if got[v] != int64(want.Label[v]) {
					panic(fmt.Sprintf("conncomp-c90: %s/%s wrong labels", fam.name, what))
				}
			}
		}
		mem := 4*(n+fam.g.NumEdges()) + 1<<18

		smach := vm.New(vm.CrayC90(), mem)
		sin := vecalg.LoadGraph(smach, n, edges)
		if got := vecalg.SerialCC(sin); got != want.Count {
			panic("conncomp-c90: scalar count wrong")
		}
		check(sin, "scalar")
		serCycles := smach.Makespan()

		ne := float64(max(fam.g.NumEdges(), 1))

		// The workstation column: union-find on the modeled DEC
		// 3000/600 with its cache simulator (Table I's comparison
		// carried to the graph level).
		ws := alpha.DEC3000600()
		wsLabels, wsCount, wsNS := ws.ConnectedComponents(n, edges)
		if wsCount != want.Count {
			panic("conncomp-c90: workstation count wrong")
		}
		for v := range wsLabels {
			if wsLabels[v] != int64(want.Label[v]) {
				panic("conncomp-c90: workstation labels wrong")
			}
		}
		t.Rows = append(t.Rows, []string{
			fam.name, fmt.Sprint(n), fmt.Sprint(fam.g.NumEdges()),
			"Alpha union-find", "1", "—", f1(wsNS / ne), "—", "—",
		})
		t.Rows = append(t.Rows, []string{
			fam.name, fmt.Sprint(n), fmt.Sprint(fam.g.NumEdges()),
			"C90 scalar union-find", "1", f2(serCycles / ne), f1(smach.Nanoseconds() / ne), "—", "—",
		})
		for _, procs := range []int{1, 2, 4, 8} {
			cfg := vm.CrayC90()
			cfg.Procs = procs
			vmach := vm.New(cfg, mem)
			vin := vecalg.LoadGraph(vmach, n, edges)
			count, rounds := vecalg.RandomMateCCP(vin, procs, seed)
			if count != want.Count {
				panic("conncomp-c90: vector count wrong")
			}
			check(vin, "vector")
			vecCycles := vmach.Makespan()
			t.Rows = append(t.Rows, []string{
				fam.name, fmt.Sprint(n), fmt.Sprint(fam.g.NumEdges()),
				fmt.Sprintf("vector random-mate, %dp", procs), fmt.Sprint(procs),
				f2(vecCycles / ne), f1(vmach.Nanoseconds() / ne),
				fmt.Sprint(rounds), fmt.Sprintf("%.2fx", serCycles/vecCycles),
			})
		}
	}
	return t
}
