package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestRenderFormats(t *testing.T) {
	tb := &Table{
		Title:   "T",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n1"},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	text := buf.String()
	for _, want := range []string{"T\n=", "a", "333", "note: n1"} {
		if !strings.Contains(text, want) {
			t.Errorf("Render output missing %q:\n%s", want, text)
		}
	}
	buf.Reset()
	tb.RenderCSV(&buf)
	if got := buf.String(); got != "a,b\n1,2\n333,4\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestTableIShape(t *testing.T) {
	tb := TableI(1<<16, 1)
	if len(tb.Rows) != 2 || len(tb.Rows[0]) != 8 {
		t.Fatalf("Table I shape wrong: %+v", tb.Rows)
	}
	// Alpha memory slower than Alpha cache.
	if !(cell(t, tb, 0, 2) > cell(t, tb, 0, 1)) {
		t.Error("alpha memory not slower than cache")
	}
	// Vectorized beats serial on the C90; more processors beat fewer.
	if !(cell(t, tb, 0, 4) < cell(t, tb, 0, 3)) {
		t.Error("vectorized rank not faster than serial")
	}
	if !(cell(t, tb, 0, 7) < cell(t, tb, 0, 5)) {
		t.Error("8-processor rank not faster than 2")
	}
	// Rank faster than scan on every C90 column.
	for col := 3; col <= 7; col++ {
		if !(cell(t, tb, 0, col) < cell(t, tb, 1, col)) {
			t.Errorf("rank not faster than scan in column %d", col)
		}
	}
}

func TestTableIIShape(t *testing.T) {
	tb := TableII(1<<15, 2)
	if len(tb.Rows) != 5 {
		t.Fatalf("Table II rows = %d", len(tb.Rows))
	}
	ours := cell(t, tb, 4, 3)
	for r := 0; r < 4; r++ {
		if !(ours < cell(t, tb, r, 3)) {
			t.Errorf("ours (%.1f) not fastest vs row %d (%.1f)", ours, r, cell(t, tb, r, 3))
		}
	}
}

func TestFig1Shape(t *testing.T) {
	tb := Fig1([]int{256, 1 << 13, 1 << 16}, 3)
	// Wyllie wins at 256, ours wins at 2^16.
	if !(cell(t, tb, 0, 2) < cell(t, tb, 0, 5)) {
		t.Error("Wyllie should win at n=256")
	}
	if !(cell(t, tb, 2, 5) < cell(t, tb, 2, 2)) {
		t.Error("ours should win at n=2^16")
	}
	// Serial roughly flat.
	if s0, s2 := cell(t, tb, 0, 1), cell(t, tb, 2, 1); s2 > 1.2*s0 || s2 < 0.8*s0 {
		t.Errorf("serial not flat: %v vs %v", s0, s2)
	}
}

func TestFig3Shape(t *testing.T) {
	tb := Fig3([]int{1 << 12, 1 << 18}, []int{1, 2, 4, 8}, 4)
	// 1p speedup is exactly 1.
	if cell(t, tb, 0, 1) != 1 || cell(t, tb, 1, 1) != 1 {
		t.Error("1p speedup not 1")
	}
	// Long lists scale better than short ones at 8p.
	if !(cell(t, tb, 1, 4) > cell(t, tb, 0, 4)) {
		t.Error("long list does not scale better than short")
	}
	// Monotone in p for the long list.
	if !(cell(t, tb, 1, 2) < cell(t, tb, 1, 3) && cell(t, tb, 1, 3) < cell(t, tb, 1, 4)) {
		t.Error("speedup not monotone in p for long list")
	}
}

func TestFig9Shape(t *testing.T) {
	tb := Fig9(10000, []int{100, 200}, 20, 5)
	for i := range tb.Rows {
		exp := cell(t, tb, i, 2)
		min, avg, max := cell(t, tb, i, 3), cell(t, tb, i, 4), cell(t, tb, i, 5)
		if !(min <= avg && avg <= max) {
			t.Errorf("row %d: min/avg/max disordered", i)
		}
		// Average within a loose band of the exponential prediction
		// except at the extremes (j=0 rows can be tiny).
		if exp > 5 && (avg < 0.5*exp || avg > 2*exp) {
			t.Errorf("row %d: avg %.1f far from expected %.1f", i, avg, exp)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	tb := Fig10(10000, 199)
	if len(tb.Rows) < 5 || len(tb.Rows) > 25 {
		t.Fatalf("unexpected schedule length %d (paper: 11)", len(tb.Rows))
	}
	// S_i increasing, g decreasing, widths non-decreasing at the ends.
	prevS, prevG := 0.0, 1e18
	for i := range tb.Rows {
		s, g := cell(t, tb, i, 1), cell(t, tb, i, 2)
		if s <= prevS {
			t.Error("S_i not increasing")
		}
		if g > prevG {
			t.Error("g(S_i) not decreasing")
		}
		prevS, prevG = s, g
	}
	first := cell(t, tb, 0, 3)
	last := cell(t, tb, len(tb.Rows)-1, 3)
	if last <= first {
		t.Errorf("pack spacing did not widen: %v vs %v", first, last)
	}
}

func TestFig11Shape(t *testing.T) {
	tb := Fig11([]int{1 << 12, 1 << 16, 1 << 19}, 6)
	// Per-vertex time decreases with n on every processor count.
	for col := 1; col <= 4; col++ {
		if !(cell(t, tb, 2, col) < cell(t, tb, 0, col)) {
			t.Errorf("column %d not decreasing with n", col)
		}
	}
	// At the largest n, more processors are faster.
	last := len(tb.Rows) - 1
	if !(cell(t, tb, last, 4) < cell(t, tb, last, 2) && cell(t, tb, last, 2) < cell(t, tb, last, 1)) {
		t.Error("processor columns disordered at large n")
	}
	// 1p large-n value near the paper's 31 ns/vertex asymptote
	// (tolerance: our machine model composes to ≈ 9.1 cycles = 38 ns).
	v := cell(t, tb, last, 1)
	if v < 28 || v > 48 {
		t.Errorf("1p asymptote %v ns/vertex, paper 31.1", v)
	}
}

func TestModelValidationShape(t *testing.T) {
	tb := ModelValidation([]int{1 << 14, 1 << 17}, 7)
	for i := range tb.Rows {
		pred, sim, eq5 := cell(t, tb, i, 3), cell(t, tb, i, 4), cell(t, tb, i, 5)
		// Eq. 3 within 20% of simulation.
		if sim < 0.8*pred || sim > 1.25*pred {
			t.Errorf("row %d: Eq.3 %.2f vs simulated %.2f", i, pred, sim)
		}
		// Eq. 5 overestimates the simulation (asymptotically; allow a
		// few percent at small n where its dropped lower-order terms
		// cut both ways).
		if eq5 < 0.95*sim {
			t.Errorf("row %d: Eq.5 %.2f well below simulated %.2f", i, eq5, sim)
		}
		if i == len(tb.Rows)-1 && eq5 < sim {
			t.Errorf("Eq.5 %.2f below simulated %.2f at the largest n", eq5, sim)
		}
	}
}

func TestGoroutineTrackRuns(t *testing.T) {
	tb := GoroutineTrack([]int{1 << 14}, []int{1, 2}, 8)
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != 7 {
		t.Fatalf("goroutine track shape: %+v", tb.Rows)
	}
	for col := 1; col < 7; col++ {
		if v := cell(t, tb, 0, col); v <= 0 {
			t.Errorf("column %d nonpositive time %v", col, v)
		}
	}
}

func TestMachineComparison(t *testing.T) {
	tb := MachineComparison(1<<15, 9)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if !(cell(t, tb, 1, 2) > cell(t, tb, 0, 2)) {
		t.Error("Y-MP ns/vertex not above C90's")
	}
}

func TestDeterministicTable(t *testing.T) {
	tb := Deterministic([]int{1 << 12}, 2, 1)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tb.Rows))
	}
	row := tb.Rows[0]
	if len(row) != len(tb.Columns) {
		t.Fatalf("row width %d != %d columns", len(row), len(tb.Columns))
	}
	if row[0] != "4096" {
		t.Errorf("n column = %q", row[0])
	}
}

func TestOversampleTable(t *testing.T) {
	tb := Oversample([]int{1 << 14}, 1.0, 0.25, 1)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tb.Rows))
	}
	row := tb.Rows[0]
	if len(row) != len(tb.Columns) {
		t.Fatalf("row width %d != %d columns", len(row), len(tb.Columns))
	}
	// Validation inside the runner already guarantees correct output;
	// spot-check the ratio parses as a positive number.
	if ratio := cell(t, tb, 0, 3); ratio <= 0 {
		t.Errorf("ratio column = %v", ratio)
	}
}

func TestOpBreakdownTable(t *testing.T) {
	tb := OpBreakdown(1<<14, 1)
	if len(tb.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(tb.Rows))
	}
	// Gathers per vertex sit near 4 (two per link in each traversal
	// phase) plus bounded overshoot.
	var gathersPerVertex float64
	for _, row := range tb.Rows {
		if row[0] == "gather elements" {
			gathersPerVertex = cell(t, tb, rowIndex(tb, "gather elements"), 2)
		}
	}
	if gathersPerVertex < 3.8 || gathersPerVertex > 6 {
		t.Errorf("gathers/vertex = %.2f, want ≈ 4-6", gathersPerVertex)
	}
}

func rowIndex(tb *Table, name string) int {
	for i, row := range tb.Rows {
		if row[0] == name {
			return i
		}
	}
	return -1
}

func TestTreeDepthTable(t *testing.T) {
	tb := TreeDepth(1<<13, 3)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	// The C90 sublist rows must beat the Alpha (ratio > 1), and 8
	// processors must beat 1.
	one := cell(t, tb, 2, 1)
	eight := cell(t, tb, 3, 1)
	if eight >= one {
		t.Errorf("8-proc %.1f ns/vertex not faster than 1-proc %.1f", eight, one)
	}
	alphaNS := cell(t, tb, 0, 1)
	if one >= alphaNS {
		t.Errorf("C90 sublist (%.1f) not faster than Alpha (%.1f)", one, alphaNS)
	}
}

func TestContractionTable(t *testing.T) {
	tb := Contraction([]int{1 << 10}, 5)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tb.Rows))
	}
	if got, want := len(tb.Rows[0]), len(tb.Columns); got != want {
		t.Fatalf("row width %d != %d", got, want)
	}
	if sp := cell(t, tb, 0, 4); sp <= 0 {
		t.Errorf("speedup column = %v", sp)
	}
}

func TestConnectivityTable(t *testing.T) {
	tb := Connectivity(1024, []int{1, 2}, 7)
	// 4 families × (2 serial + 2 algos × 2 proc counts) rows.
	if want := 4 * 6; len(tb.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), want)
	}
	for _, row := range tb.Rows {
		if len(row) != len(tb.Columns) {
			t.Fatalf("row width %d != %d", len(row), len(tb.Columns))
		}
	}
}

func TestBiconnectivityTable(t *testing.T) {
	tb := Biconnectivity(512, []int{1}, 9)
	if want := 4 * 2; len(tb.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), want)
	}
	// Path family: every edge a bridge; blocks == edges.
	for _, row := range tb.Rows {
		if row[0] == "path" {
			if row[6] != row[2] {
				t.Errorf("path: blocks %s != edges %s", row[6], row[2])
			}
		}
	}
}

func TestConnectivityC90Table(t *testing.T) {
	tb := ConnectivityC90(512, 3)
	// 4 families × (Alpha + C90 scalar + 4 vector proc counts).
	if want := 4 * 6; len(tb.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), want)
	}
	// Vector rows must report a speedup over the scalar row, and the
	// 8p row must beat the 1p row.
	for f := 0; f < 4; f++ {
		one := cell(t, tb, f*6+2, 5)
		eight := cell(t, tb, f*6+5, 5)
		if eight >= one {
			t.Errorf("family %d: 8p cycles/edge %.1f not below 1p %.1f", f, eight, one)
		}
	}
}
