package harness

import (
	"fmt"
	"time"

	"listrank/internal/core"
	"listrank/internal/list"
	"listrank/internal/rng"
	"listrank/internal/ruling"
	"listrank/internal/serial"
	"listrank/internal/vecalg"
	"listrank/internal/vm"
)

// This file holds the experiments that extend the paper's evaluation:
// the §6 deterministic-algorithm comparison the paper argued by
// analysis instead of measurement, and the §7 oversampling what-if it
// predicted but did not implement. Both keep the same discipline as
// the original runners: every reported time is validated against the
// serial reference first.

// Deterministic measures the ruling-set algorithm (Cole-Vishkin coin
// tossing + 2-ruling-set contraction, package ruling) against the
// serial walk and the paper's algorithm on the goroutine track. The
// paper's §6 claim — deterministic symmetry breaking pays too much
// per element to be competitive — becomes a measured ratio.
func Deterministic(lengths []int, procs int, seed uint64) *Table {
	tb := &Table{
		Title: fmt.Sprintf("§6 extension: deterministic ruling-set list scan, wall clock, %d procs", procs),
		Columns: []string{"n", "serial", "ours", "ruling-set",
			"ruling/ours", "levels", "color-rounds", "rulers"},
		Notes: []string{
			"ruling-set = Cole-Vishkin coin tossing + 2-ruling-set contraction (the §6 family, simplest member)",
			"the paper predicted this family is uncompetitive; the ratio column is that prediction measured",
		},
	}
	r := rng.New(seed)
	timeIt := func(f func()) float64 {
		start := time.Now()
		f()
		return float64(time.Since(start).Nanoseconds())
	}
	for _, n := range lengths {
		l := list.NewRandom(n, r)
		want := serial.Scan(l)
		fn := float64(n)
		var out []int64
		tSerial := timeIt(func() { out = serial.Scan(l) }) / fn
		checkEqual(out, want, "serial")
		tOurs := timeIt(func() { out = core.Scan(l, core.Options{Seed: seed, Procs: procs}) }) / fn
		checkEqual(out, want, "ours")
		var st ruling.Stats
		tRuling := timeIt(func() { out = ruling.Scan(l, ruling.Options{Procs: procs, Stats: &st}) }) / fn
		checkEqual(out, want, "ruling-set")
		tb.Rows = append(tb.Rows, []string{
			fmt.Sprint(n), f1(tSerial), f1(tOurs), f1(tRuling),
			f2(tRuling / tOurs), fmt.Sprint(st.Levels),
			fmt.Sprint(st.ColorRounds), fmt.Sprint(st.Rulers),
		})
	}
	return tb
}

// OpBreakdown decomposes one tuned sublist-scan run on the simulated
// C90 into its operation demands (vm.OpStats) and checks them against
// the §3 loop structure: Phases 1 and 3 traverse every link once each
// (≈ 2n gathered link words plus n gathered values per phase … the
// value gather of Phase 1 and the two gathers of Phase 3 put the
// expected gather total near 4n plus the idle-overshoot the §4
// schedule tolerates), with one scatter per vertex for the Phase 3
// results. It is the operation-level counterpart of the end-to-end
// cycle calibrations in internal/vecalg's tests.
func OpBreakdown(n int, seed uint64) *Table {
	r := rng.New(seed)
	l := list.NewRandom(n, r)
	want := l.ExclusiveScan()
	mach := vm.New(vm.CrayC90(), 16*n+4096)
	in := vecalg.Load(mach, l)
	vecalg.SublistScan(in, vecalg.FromTuned(n, seed))
	checkEqual(in.OutSlice(), want, "opbreakdown")
	st := mach.OpStats()
	fn := float64(n)
	tb := &Table{
		Title:   fmt.Sprintf("Operation breakdown: tuned sublist list scan, n=%d, 1 processor", n),
		Columns: []string{"metric", "count", "per vertex"},
		Notes: []string{
			"gather/vertex ≈ 4 + idle overshoot (two per link in Phase 1's value+link and Phase 3's value+link loops)",
			"scatter/vertex ≥ 1 (Phase 3 results) plus pack compressions and competition writes",
			"loops and strips measure the §7 short-vector concern: startup overhead per loop, strips of ≤128",
		},
	}
	add := func(name string, v int64) {
		tb.Rows = append(tb.Rows, []string{name, fmt.Sprint(v), f2(float64(v) / fn)})
	}
	add("vector loops", st.Loops)
	add("loop elements", st.Elems)
	add("strips (<=128)", st.Strips)
	add("gather elements", st.GatherElems)
	add("scatter elements", st.ScatterElems)
	add("load elements", st.LoadElems)
	add("store elements", st.StoreElems)
	add("ALU elements", st.ALUElems)
	add("RNG elements", st.RNGElems)
	tb.Rows = append(tb.Rows, []string{"bank-stall cycles", fmt.Sprintf("%.0f", st.StallCycles), f2(st.StallCycles / fn)})
	tb.Rows = append(tb.Rows, []string{"total cycles", fmt.Sprintf("%.0f", mach.Makespan()), f2(mach.Makespan() / fn)})
	return tb
}

// Oversample prices the §7 oversampling extension on the simulated
// C90: the same tuned run with and without frac·m reserve splitters,
// at a range of list lengths. The "tax" column is the marking
// scatter's inflation of the Phase 1 loop; "rounds" shows the
// collapsed short-vector tail it buys.
func Oversample(lengths []int, frac, trigger float64, seed uint64) *Table {
	tb := &Table{
		Title: fmt.Sprintf("§7 extension: oversampling on the simulated CRAY C90 (frac=%.2g, trigger=%.2g)", frac, trigger),
		Columns: []string{"n", "base ns/v", "oversampled ns/v", "ratio",
			"rounds1", "activated", "sublists"},
		Notes: []string{
			"base = the paper's tuned 1-processor list scan; oversampled adds reserve splitters and the visited-marking scatter",
			"the marking scatter serializes with the traversal gathers on the single gather/scatter unit (3.4 -> 4.6 cycles/element)",
			"ratio > 1 reproduces the paper's §7 prediction that bookkeeping outweighs the shorter vector tail",
		},
	}
	r := rng.New(seed)
	for _, n := range lengths {
		l := list.NewRandom(n, r)
		want := l.ExclusiveScan()
		pr := vecalg.FromTuned(n, seed)
		fn := float64(n)

		machBase := vm.New(vm.CrayC90(), 16*n+4096)
		inBase := vecalg.Load(machBase, l)
		vecalg.SublistScan(inBase, pr)
		checkEqual(inBase.OutSlice(), want, "base")
		baseNS := machBase.Nanoseconds() / fn

		machOver := vm.New(vm.CrayC90(), 16*n+4096)
		inOver := vecalg.Load(machOver, l)
		st := vecalg.SublistScanOversampled(inOver, pr, frac, trigger)
		checkEqual(inOver.OutSlice(), want, "oversampled")
		overNS := machOver.Nanoseconds() / fn

		tb.Rows = append(tb.Rows, []string{
			fmt.Sprint(n), f1(baseNS), f1(overNS), f2(overNS / baseNS),
			fmt.Sprint(st.Rounds1), fmt.Sprint(st.Activated), fmt.Sprintf("%d->%d", st.K0, st.K),
		})
	}
	return tb
}
