package harness

import (
	"fmt"
	"time"

	"listrank"
	"listrank/internal/rng"
	"listrank/internal/vecalg"
	"listrank/internal/vm"
	"listrank/tree"
)

// Contraction gives parallel expression-tree evaluation the paper's
// treatment: the vectorized rake-contraction program (internal/vecalg,
// after refs [1] and [31]) against the serial postorder walk on the
// simulated C90, plus the goroutine-track contraction for real wall
// clock. The verdict is the paper's small-constants story with the
// sign flipped: a rake costs ~15 gather/scatter passes against list
// ranking's one gather per link, so on one processor the vector
// program loses to the scalar walk — the primitive (list ranking, for
// the leaf numbering) is fast enough, but the application's own
// constants decide, exactly as §6/§7 argue.
func Contraction(nLeavesList []int, seed uint64) *Table {
	tb := &Table{
		Title: "Tree contraction on the CRAY C90: vectorized rake vs serial walk",
		Columns: []string{"nodes", "serial cyc/node", "vector cyc/node", "tour part",
			"speedup", "rounds", "goroutine ns/node"},
		Notes: []string{
			"vector = rake contraction as a 1-processor vector program (leaf numbering by the tuned sublist scan)",
			"serial = dependent postorder chase at the calibrated scalar rate",
			"goroutine = package tree's Eval wall clock on this host",
		},
	}
	r := rng.New(seed)
	for _, nLeaves := range nLeavesList {
		left, right, ops, vals := randomExprArrays(nLeaves, r)
		n := len(left)

		// Reference + goroutine track.
		li := make([]int, n)
		ri := make([]int, n)
		to := make([]tree.Op, n)
		for i := 0; i < n; i++ {
			li[i], ri[i] = int(left[i]), int(right[i])
			to[i] = tree.Op(ops[i])
		}
		e, err := tree.NewExpr(li, ri, to, vals, listrank.Options{})
		if err != nil {
			panic(err)
		}
		want := e.EvalSerial()
		start := time.Now()
		goGot := e.Eval(nil)
		goNS := float64(time.Since(start).Nanoseconds()) / float64(n)
		if goGot != want {
			panic(fmt.Sprintf("harness: goroutine contraction %d != %d", goGot, want))
		}

		// Vector program.
		mach := vm.New(vm.CrayC90(), 24*n+8192)
		in := vecalg.LoadExpr(mach, left, right, ops, vals)
		got, st := vecalg.ContractEval(in, vecalg.FromTuned(2*n, seed))
		if got != want {
			panic(fmt.Sprintf("harness: vector contraction %d != %d", got, want))
		}
		vec := mach.Makespan() / float64(n)

		// Serial walk.
		machS := vm.New(vm.CrayC90(), 1024)
		machS.Proc(0).ScalarChase(n, true)
		ser := machS.Makespan() / float64(n)

		tb.Rows = append(tb.Rows, []string{
			fmt.Sprint(n), f1(ser), f1(vec), f1(st.TourCycles / float64(n)),
			f2(ser / vec), fmt.Sprint(st.Rounds), f1(goNS),
		})
	}
	return tb
}

// randomExprArrays builds a random full binary expression tree
// (mostly additions, int64-safe) in the array form both tracks share.
func randomExprArrays(nLeaves int, r *rng.Rand) ([]int32, []int32, []int8, []int64) {
	n := 2*nLeaves - 1
	left := make([]int32, n)
	right := make([]int32, n)
	ops := make([]int8, n)
	vals := make([]int64, n)
	next := int32(1)
	type frame struct {
		v int32
		k int
	}
	stack := []frame{{0, nLeaves}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.k == 1 {
			left[f.v], right[f.v] = -1, -1
			vals[f.v] = int64(r.Intn(5)) - 2
			continue
		}
		if r.Intn(8) == 0 {
			ops[f.v] = 1
		}
		kl := 1
		if r.Float64() < 0.5 {
			kl = 1 + r.Intn(f.k-1)
		}
		l, rr := next, next+1
		next += 2
		left[f.v], right[f.v] = l, rr
		stack = append(stack, frame{l, kl}, frame{rr, f.k - kl})
	}
	return left, right, ops, vals
}
