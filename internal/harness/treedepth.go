package harness

import (
	"fmt"
	"time"

	"listrank"
	"listrank/internal/alpha"
	"listrank/internal/list"
	"listrank/internal/rng"
	"listrank/internal/serial"
	"listrank/internal/vecalg"
	"listrank/internal/vm"
	"listrank/tree"
)

// TreeDepth answers the paper's closing question ("whether having a
// fast list-ranking implementation helps in making other
// pointer-based applications practical", §7) with the same Table I
// treatment the paper gives list ranking itself: computing the depth
// of every vertex of a random n-vertex tree — one list scan of the
// 2n-element Euler tour — on the simulated DEC Alpha, the simulated
// C90 (serial and vectorized, 1 and 8 processors), and the goroutine
// track. The application inherits the primitive's speedups almost
// unchanged, because everything around the scan is pointer
// assignments and elementwise passes.
func TreeDepth(n int, seed uint64) *Table {
	// A random deep-ish tree; depth statistics exercise long chains.
	r := rng.New(seed)
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		span := v
		if span > 64 && r.Intn(4) != 0 {
			span = 64
		}
		parent[v] = v - 1 - r.Intn(span)
	}
	tr, err := tree.New(parent, listrank.Options{})
	if err != nil {
		panic(err)
	}
	tour := tr.Tour()
	m := tour.Len() // 2n tour elements
	il := &list.List{Next: tour.Next, Value: tour.Value, Head: tour.Head}
	wantScan := serial.Scan(il)
	wantDepths := tr.Depths()
	checkDepths := func(pfx []int64, what string) {
		for v := 0; v < n; v++ {
			if pfx[v] != wantDepths[v] {
				panic(fmt.Sprintf("harness: %s depth[%d] = %d, want %d", what, v, pfx[v], wantDepths[v]))
			}
		}
	}

	tb := &Table{
		Title:   fmt.Sprintf("§7 answered: tree depths via Euler tour + list scan, n=%d vertices (tour %d)", n, m),
		Columns: []string{"machine", "ns/vertex", "vs Alpha"},
		Notes: []string{
			"one list scan of the 2n-element tour computes every depth; ns/vertex is per tree vertex",
			"goroutine row is real wall clock on this host; the others are modeled 1994 machines",
		},
	}
	var alphaNS float64
	addRow := func(name string, ns float64) {
		ratio := "1.00"
		if alphaNS == 0 {
			alphaNS = ns
		} else {
			ratio = f2(alphaNS / ns)
		}
		tb.Rows = append(tb.Rows, []string{name, f1(ns / float64(n)), ratio})
	}

	// DEC Alpha, cold cache (the tour never fits for interesting n).
	w := alpha.DEC3000600()
	out, ns := w.Scan(il)
	checkEqual(out, wantScan, "alpha tree scan")
	checkDepths(out, "alpha")
	addRow("DEC 3000/600 (memory)", ns)

	// C90 serial.
	{
		mach := vm.New(vm.CrayC90(), 16*m+4096)
		in := vecalg.Load(mach, il)
		vecalg.SerialScan(in)
		got := in.OutSlice()
		checkEqual(got, wantScan, "c90 serial tree scan")
		checkDepths(got, "c90 serial")
		addRow("CRAY C90 serial", mach.Nanoseconds())
	}

	// C90 sublist, 1 and 8 processors.
	for _, procs := range []int{1, 8} {
		cfg := vm.CrayC90()
		cfg.Procs = procs
		mach := vm.New(cfg, 16*m+4096)
		in := vecalg.Load(mach, il)
		vecalg.SublistScan(in, vecalg.FromTunedP(m, procs, cfg.ContentionFor(procs), seed))
		got := in.OutSlice()
		checkEqual(got, wantScan, "c90 sublist tree scan")
		checkDepths(got, "c90 sublist")
		addRow(fmt.Sprintf("CRAY C90 sublist, %d proc", procs), mach.Nanoseconds())
	}

	// Goroutine track (real wall clock): the full tree.Depths call,
	// including the elementwise extraction.
	start := time.Now()
	depths := tr.Depths()
	wallNS := float64(time.Since(start).Nanoseconds())
	checkDepths(depths, "goroutine")
	addRow("goroutine track (this host)", wallNS)

	return tb
}
