package core

import (
	"listrank/internal/chaos"
	"listrank/internal/kernel"
	"listrank/internal/list"
	"listrank/internal/rng"
)

// This file implements the oversampling extension the paper's
// conclusion attributes to John Reif (§7): "use oversampling to
// further subdivide the remaining long sublists when the vector
// lengths become short. The cost, however, of maintaining which
// subdivisions remain relevant would slow down the two major list-scan
// loops of the algorithm and likely slow down the overall
// performance." The paper left it unimplemented; we implement it so
// the prediction is measurable (BenchmarkAblation_Oversampling).
//
// Mechanism. Setup draws f·m *reserve* splitters beyond the m primary
// ones, but does not cut at them. The Phase 1 lockstep loop pays the
// predicted bookkeeping cost: one extra store per link marks every
// visited vertex, so that when the active set first shrinks below a
// trigger fraction of its initial size, the still-unvisited reserve
// positions are exactly the subdivisions that remain relevant — each
// lies in the untraversed portion of some long surviving sublist.
// Activating a reserve position r is the ordinary splitter ritual: a
// new virtual processor with splitter r and head next(r) joins the
// active set, values[r] is identity-overwritten (saved first), and
// next(r) becomes a self-loop. The existing reduced-list competition,
// tail-value fold, Phase 2, Phase 3 and restoration machinery then
// handle the grown virtual-processor table without modification.
//
// Phase 3 cannot activate further subdivisions (a new sublist's head
// prefix is unknown until its predecessor reaches it), so it simply
// inherits Phase 1's cuts — also as the paper sketches: the benefit is
// vector length, the cost is the marking store in the main loops.
//
// The implementation restricts oversampling to single-worker runs.
// Reserve positions cannot be attributed to the worker whose chunk of
// sublists contains them (that attribution is a rank query), so
// cross-worker activation would race with traversal; the paper's
// setting — one vector processor, or per-processor local activation
// after its §5 static partition — has the same restriction for the
// same reason.

// scanAddOversampled is scanAdd's lockstep variant with reserve
// splitters. Callers guarantee n > SerialCutoff, M >= 1 and Procs == 1
// (enforced in scanAdd's dispatch).
func scanAddOversampled(out []int64, l *list.List, values []int64, opt Options, depth int, sc *Scratch) {
	n := l.Len()
	if st := opt.Stats; st != nil {
		st.Depth = depth
	}
	v, tail, savedTail := setup(out, l, values, 0, opt, sc)
	defer func() { restore(l, values, v, tail, savedTail) }()

	// Draw the reserve pool. Duplicates with primaries or the tail are
	// culled lazily at activation time (next(r) == r then).
	nReserve := int(opt.Oversample * float64(opt.M))
	r := rng.New(opt.Seed + 0xd1b54a32d192ed03)
	reserve := make([]int64, 0, nReserve)
	for len(reserve) < nReserve {
		p := int64(r.Intn(n))
		if p != tail {
			reserve = append(reserve, p)
		}
	}
	if st := opt.Stats; st != nil {
		st.ReserveDrawn = len(reserve)
	}

	trigger := opt.OversampleTrigger
	if trigger <= 0 || trigger >= 1 {
		trigger = defaultOversampleTrigger
	}

	opt.checkpoint(chaos.PointPhase1)
	oversampledPhase1(l, values, v, reserve, trigger, opt)

	k := len(v.r) // grown by activations
	// A canceled Phase 1 leaves v.cur partially stale (see the same
	// guard in ranksEnc); abandon before any stage consumes it.
	if opt.Cancel.Canceled() {
		panic(ErrCanceled)
	}
	findSuccessors(out, v, 1, sc)
	for j := 0; j < k; j++ {
		s := v.succ[j]
		if int(s) != j {
			v.sum[j] += v.saved[s]
		}
	}

	opt.checkpoint(chaos.PointPhase2)
	phase2Add(v, k, opt, depth, sc)

	opt.checkpoint(chaos.PointPhase3)
	lockstepPhase3(out, l, values, v, 1, opt, sc)
	if opt.Cancel.Canceled() {
		panic(ErrCanceled)
	}
}

const defaultOversampleTrigger = 0.25

// oversampledPhase1 is lockstepPhase1 plus visited marking and the
// one-shot activation tranche. Single worker only.
func oversampledPhase1(l *list.List, values []int64, v *vps, reserve []int64, trigger float64, opt Options) {
	k0 := len(v.r)
	steps, repeat := deltas(opt.Schedule, l.Len(), k0)
	next := l.Next
	visited := make([]bool, l.Len())
	threshold := int(trigger * float64(k0))

	active := make([]int32, 0, k0)
	for j := 0; j < k0; j++ {
		v.sum[j] = 0
		v.cur[j] = v.h[j]
		active = append(active, int32(j))
	}
	round := 0
	var links int64
	activated := 0
	for len(active) > 0 {
		chaos.Point(chaos.PointChunk)
		if opt.Cancel.Canceled() {
			break // fall through to record stats; caller re-checks
		}
		d := repeat
		if round < len(steps) {
			d = steps[round]
		}
		for s := 0; s < d; s++ {
			// The paper's InitialScan loop plus the predicted
			// bookkeeping cost: one store per link
			// (kernel.StepSumAddMark).
			kernel.StepSumAddMark(next, values, v.cur, v.sum, visited, active)
			links += int64(len(active))
		}
		live := active[:0]
		for _, j := range active {
			if next[v.cur[j]] != v.cur[j] {
				live = append(live, j)
			}
		}
		active = live
		round++

		if len(reserve) > 0 && len(active) < threshold && len(active) > 0 {
			// Activate every still-relevant reserve subdivision.
			for _, rp := range reserve {
				if visited[rp] || next[rp] == rp {
					continue // already traversed, or already a cut
				}
				j := int32(len(v.r))
				v.r = append(v.r, rp)
				v.h = append(v.h, next[rp])
				v.saved = append(v.saved, values[rp])
				v.sum = append(v.sum, 0)
				v.cur = append(v.cur, next[rp])
				v.succ = append(v.succ, 0)
				v.pfx = append(v.pfx, 0)
				next[rp] = rp
				values[rp] = 0
				active = append(active, j)
				activated++
			}
			reserve = nil
		}
	}
	if st := opt.Stats; st != nil {
		st.LinksTraversed += links
		st.PackRounds += round
		st.ReserveActivated = activated
		st.Sublists = len(v.r)
	}
}

// oversampleEnabled reports whether this run should take the
// oversampled path.
func (o Options) oversampleEnabled(n int) bool {
	return o.Oversample > 0 && o.Procs == 1 && o.lockstep(n)
}
