package core

import (
	"sync"

	"listrank/internal/arena"
	"listrank/internal/list"
	"listrank/internal/par"
)

// This file implements the reusable scratch arena behind the
// zero-steady-state-allocation engine. The paper's whole argument (§1,
// §3) is that constants, not asymptotics, decide whether parallel list
// ranking beats the serial walk, and Table II counts every word of the
// 5p+c working space. Allocating (and zeroing) that working space on
// every call is a constant-factor tax the paper's accounting never
// pays: a Cray program allocates its vectors once and streams problems
// through them. Scratch restores that discipline on the goroutine
// track: one arena owns every per-call buffer the algorithm needs, each
// buffer grows geometrically and is reused verbatim, so a warm arena
// services any number of calls — across varying list lengths,
// algorithms and disciplines — without touching the heap.

// Scratch is the reusable working-space arena for the sublist engine.
// A Scratch may be reused across calls of any size and algorithm but
// must not be used by two calls concurrently; use one per goroutine
// (the package-level entry points keep a sync.Pool of them).
type Scratch struct {
	// v backs the virtual-processor table (the paper's 5p words,
	// Table II). Slices are resized views of the same backing arrays.
	v vps

	// Splitter-selection buffers: drawn positions, per-worker winner
	// staging and counts, and the kept table (vp index -> splitter).
	pos     []int64
	winners []int64
	counts  []int
	kept    []int64

	// tails holds per-worker results of the parallel tail search.
	tails []int64

	// enc is the rank engine's encoded link+addend word array (§3).
	enc []uint64

	// ones is the generic rank fallback's all-ones value array. Its
	// entire capacity is kept filled with 1: the engine only ever
	// mutates it through setup, whose restore puts the 1s back.
	ones []int64

	// Lockstep traversal state: the active sublist sets and Phase 3
	// accumulators are chunk-partitioned by worker inside one k-sized
	// buffer each; links/rounds are per-worker stat counters.
	active []int32
	acc    []int64
	links  []int64
	rounds []int

	// Phase 2 pointer-jumping buffers (values and links, double
	// buffered), shared by the add and generic-operator solvers.
	jval, jval2 []int64
	jlnk, jlnk2 []int32

	// Phase 2 recursion storage: succ widened to int64 links, plus a
	// reusable list header so no list.List is allocated per call.
	rlNext []int64
	rl     list.List

	// bl is the reusable header for the boundary-list entry points
	// (segrank.go). It is distinct from rl because a boundary scan that
	// recurses in its own Phase 2 uses rl at the same time.
	bl list.List

	// child is the arena for Phase 2 recursion, created on first use
	// and reused for every later recursive call.
	child *Scratch

	// pool is the resident worker pool used for every fan-out (layer 0
	// of the arena architecture); nil selects the process-wide shared
	// pool. Recursion hands the same pool to the child arena.
	pool *par.Pool

	// fc stashes the per-dispatch arguments read by the named pool
	// task functions (task* in this package). Pool bodies must be
	// closure-free to keep steady-state calls allocation-free — a
	// closure literal escaping into the pool's job slot heap-allocates
	// on every call — so each fan-out site writes its varying
	// arguments here and passes the Scratch itself as the dispatch
	// context. Caller-owned references are dropped by releaseCall at
	// the end of every exported entry point.
	fc struct {
		out, next, values []int64
		op                func(a, b int64) int64
		cancel            *Cancel
		identity          int64
		n, m              int
		tail              int64
		seed              uint64
		steps             []int
		repeat            int
		k, p, rounds      int
		lanes             int
		val, val2         []int64
		lnk, lnk2         []int32
		total             int64
	}
}

// SetPool selects the resident worker pool this arena dispatches its
// fan-outs on; nil (the default) selects the process-wide par.Shared()
// pool. An engine that owns a pool the way it owns its arena passes it
// here once; the pool is not closed by the arena.
func (sc *Scratch) SetPool(pl *par.Pool) {
	sc.pool = pl
	if sc.child != nil {
		sc.child.SetPool(pl)
	}
}

// fanout returns the pool every parallel phase dispatches on.
func (sc *Scratch) fanout() *par.Pool {
	if sc.pool != nil {
		return sc.pool
	}
	return par.Shared()
}

// releaseCall drops the fan-out stash's references to caller-owned
// storage (dst, the list's Next/Value arrays, the operator) so a held
// or pooled arena never keeps a finished problem alive. The child
// arena's stash only ever references this arena's own buffers, so it
// needs no recursive release.
func (sc *Scratch) releaseCall() {
	sc.fc.out, sc.fc.next, sc.fc.values = nil, nil, nil
	sc.fc.op = nil
	sc.fc.cancel = nil
	sc.fc.steps = nil
	sc.fc.val, sc.fc.val2, sc.fc.lnk, sc.fc.lnk2 = nil, nil, nil, nil
}

// NewScratch returns an empty arena. Buffers are allocated lazily on
// first use and grow geometrically, so the first call at a given size
// pays the allocations and subsequent calls pay none.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool backs the package-level entry points (Ranks, Scan,
// ScanOp, …): callers that do not hold a Scratch of their own still
// amortize working-space allocation across calls.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

func getScratch() *Scratch  { return scratchPool.Get().(*Scratch) }
func putScratch(s *Scratch) { scratchPool.Put(s) }

// grow resizes a buffer through the shared arena helper (contents
// unspecified; see internal/arena). The primitive started life here
// and was extracted so the tree and graph engines share one
// definition; the local name keeps the many core call sites short.
func grow[T any](b []T, n int) []T { return arena.Grow(b, n) }

// vps returns the virtual-processor table resized to k entries.
// Contents are unspecified; setup fills every field it reads.
func (sc *Scratch) vps(k int) *vps {
	sc.v.r = grow(sc.v.r, k)
	sc.v.h = grow(sc.v.h, k)
	sc.v.saved = grow(sc.v.saved, k)
	sc.v.sum = grow(sc.v.sum, k)
	sc.v.cur = grow(sc.v.cur, k)
	sc.v.succ = grow(sc.v.succ, k)
	sc.v.pfx = grow(sc.v.pfx, k)
	return &sc.v
}

// onesFor returns an all-ones value array of length n. The invariant
// that the whole backing array holds 1s is maintained jointly with
// setup/restore: the engine overwrites entries only through setup,
// which restores them before returning (even on panic, via defer).
func (sc *Scratch) onesFor(n int) []int64 {
	if cap(sc.ones) < n {
		c := 2 * cap(sc.ones)
		if c < n {
			c = n
		}
		b := make([]int64, c)
		for i := range b {
			b[i] = 1
		}
		sc.ones = b
	}
	return sc.ones[:n]
}

// linksBuf and roundsBuf return zeroed per-worker stat counters.
func (sc *Scratch) linksBuf(p int) []int64 {
	sc.links = arena.Zeroed(sc.links, p)
	return sc.links
}

func (sc *Scratch) roundsBuf(p int) []int {
	sc.rounds = arena.Zeroed(sc.rounds, p)
	return sc.rounds
}

// reducedView materializes a list.List view of the reduced list for
// Phase 2 recursion without per-call allocation: the int32 succ links
// are widened into a reused buffer and v.sum is shared as the value
// array (it is dead after Phase 2 and the recursive call's own
// setup/restore pair leaves it unchanged).
func (sc *Scratch) reducedView(v *vps, k, p int) *list.List {
	sc.rlNext = grow(sc.rlNext, k)
	rn := sc.rlNext
	if p == 1 {
		widenSucc(rn, v.succ, 0, k)
	} else {
		sc.fanout().ForChunksCtx(k, p, sc, taskWidenSucc)
	}
	sc.rl = list.List{Next: rn, Value: v.sum[:k], Head: 0}
	return &sc.rl
}

func taskWidenSucc(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	widenSucc(sc.rlNext, sc.v.succ, lo, hi)
}

func widenSucc(dst []int64, succ []int32, lo, hi int) {
	for j := lo; j < hi; j++ {
		dst[j] = int64(succ[j])
	}
}

// childScratch returns the arena for one level of Phase 2 recursion,
// creating it on first use. It dispatches on the same pool.
func (sc *Scratch) childScratch() *Scratch {
	if sc.child == nil {
		sc.child = NewScratch()
		sc.child.pool = sc.pool
	}
	return sc.child
}
