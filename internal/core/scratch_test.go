package core

import (
	"fmt"
	"testing"

	"listrank/internal/list"
	"listrank/internal/par"
	"listrank/internal/rng"
	"listrank/internal/serial"
)

// TestScratchReuseAcrossSizes drives one arena through wildly varying
// list lengths, engines and disciplines; every result must match the
// serial reference, and the shared buffers must never leak state from
// one call into the next (sizes deliberately shrink as well as grow).
func TestScratchReuseAcrossSizes(t *testing.T) {
	sc := NewScratch()
	r := rng.New(41)
	sizes := []int{5000, 100, 1 << 15, 3000, 1 << 16, 777, 1 << 15}
	for _, n := range sizes {
		l := list.NewRandom(n, r)
		l.RandomValues(-30, 30, r)
		wantScan := serial.Scan(l)
		wantRank := l.Ranks()
		for _, d := range []Discipline{DisciplineNatural, DisciplineLockstep} {
			dst := make([]int64, n)
			ScanInto(dst, l, Options{Seed: uint64(n), Discipline: d}, sc)
			equal(t, dst, wantScan, "scratch reuse scan")
			RanksInto(dst, l, Options{Seed: uint64(n), Discipline: d}, sc)
			equal(t, dst, wantRank, "scratch reuse rank")
			RanksInto(dst, l, Options{Seed: uint64(n), Discipline: d, DisableEncoding: true}, sc)
			equal(t, dst, wantRank, "scratch reuse rank generic")
		}
	}
}

// TestScratchReuseMatchesFresh: a reused arena must produce results
// byte-identical to a fresh arena for identical options, across all
// Phase 2 solvers (including the recursion that uses the child arena).
func TestScratchReuseMatchesFresh(t *testing.T) {
	r := rng.New(42)
	l := list.NewRandom(60000, r)
	l.RandomValues(-9, 9, r)
	sc := NewScratch()
	// Dirty the arena with unrelated runs first.
	warm := make([]int64, l.Len())
	ScanInto(warm, l, Options{Seed: 999}, sc)
	RanksInto(warm, l, Options{Seed: 998}, sc)
	for _, alg := range []Phase2Algorithm{Phase2Serial, Phase2Wyllie, Phase2Recursive} {
		for _, p := range []int{1, 4} {
			opt := Options{Seed: 43, Phase2: alg, Procs: p, SerialCutoff: 64}
			fresh := make([]int64, l.Len())
			ScanInto(fresh, l, opt, NewScratch())
			reused := make([]int64, l.Len())
			ScanInto(reused, l, opt, sc)
			equal(t, reused, fresh, "reused vs fresh scan")
		}
	}
}

// TestZeroAllocSteadyState is the tentpole's contract: with a warm
// arena, rank and scan calls perform zero heap allocations — across
// the natural and lockstep disciplines, the encoded rank engine, and
// all three Phase 2 solvers — at Procs == 1 (everything inline) *and*
// at Procs == 4, where every fan-out dispatches closure-free onto the
// arena's resident worker pool. The Procs > 1 leg uses an arena-owned
// pool sized to the job so the guarantee holds regardless of the host
// machine's core count.
func TestZeroAllocSteadyState(t *testing.T) {
	n := 1 << 18 // >= lockstepAutoThreshold so auto resolves to lockstep
	l := list.NewRandom(n, rng.New(44))
	dst := make([]int64, n)
	for _, procs := range []int{1, 4} {
		sc := NewScratch()
		if procs > 1 {
			pool := par.NewPool(procs)
			defer pool.Close()
			sc.SetPool(pool)
		}
		opt := func(o Options) Options { o.Procs = procs; return o }
		cases := []struct {
			name string
			run  func()
		}{
			{"scan-auto", func() { ScanInto(dst, l, opt(Options{Seed: 7}), sc) }},
			{"scan-natural", func() { ScanInto(dst, l, opt(Options{Seed: 7, Discipline: DisciplineNatural}), sc) }},
			{"scan-wyllie-p2", func() { ScanInto(dst, l, opt(Options{Seed: 7, Phase2: Phase2Wyllie}), sc) }},
			{"scan-recursive-p2", func() { ScanInto(dst, l, opt(Options{Seed: 7, Phase2: Phase2Recursive}), sc) }},
			{"rank-encoded", func() { RanksInto(dst, l, opt(Options{Seed: 7}), sc) }},
			{"rank-generic", func() { RanksInto(dst, l, opt(Options{Seed: 7, DisableEncoding: true}), sc) }},
			{"scanop-min", func() {
				minOp := func(a, b int64) int64 {
					if a < b {
						return a
					}
					return b
				}
				ScanOpInto(dst, l, minOp, 1<<62, opt(Options{Seed: 7}), sc)
			}},
		}
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s-p%d", tc.name, procs), func(t *testing.T) {
				tc.run() // warm the arena for this configuration
				if allocs := testing.AllocsPerRun(3, tc.run); allocs != 0 {
					t.Errorf("%s: %v allocs/op with a warm arena, want 0", tc.name, allocs)
				}
			})
		}
	}
}

// TestParallelSetupDeterministic: the chunked splitter draw depends
// only on the seed, so runs with different worker counts must agree on
// the splitter statistics (sublist count, duplicates) exactly, and on
// the results bit for bit.
func TestParallelSetupDeterministic(t *testing.T) {
	r := rng.New(45)
	l := list.NewRandom(1<<16, r)
	l.RandomValues(-40, 40, r)
	var base Stats
	want := make([]int64, l.Len())
	ScanInto(want, l, Options{Seed: 46, Procs: 1, Stats: &base}, nil)
	for _, p := range []int{2, 3, 4, 8} {
		var st Stats
		got := make([]int64, l.Len())
		ScanInto(got, l, Options{Seed: 46, Procs: p, Stats: &st}, nil)
		equal(t, got, want, "parallel setup scan")
		if st.Sublists != base.Sublists || st.DuplicatesDropped != base.DuplicatesDropped {
			t.Errorf("procs=%d: sublists/dropped = %d/%d, want %d/%d (draw must not depend on Procs)",
				p, st.Sublists, st.DuplicatesDropped, base.Sublists, base.DuplicatesDropped)
		}
	}
	// And repeated runs at the same proc count agree with themselves.
	var a, b Stats
	_ = Ranks(l, Options{Seed: 47, Procs: 4, Stats: &a})
	_ = Ranks(l, Options{Seed: 47, Procs: 4, Stats: &b})
	if a != b {
		t.Errorf("repeated runs diverged: %+v vs %+v", a, b)
	}
}

// TestPhase3OverwritesSuccessorMarkers asserts the invariant the
// findSuccessors comment relies on: the competition markers it leaves
// in out are all overwritten by Phase 3, so a dst pre-filled with a
// sentinel never shows it after any engine path.
func TestPhase3OverwritesSuccessorMarkers(t *testing.T) {
	const sentinel = int64(-1) << 62
	r := rng.New(48)
	l := list.NewRandom(40000, r)
	l.RandomValues(-5, 5, r)
	want := serial.Scan(l)
	wantRank := l.Ranks()
	for _, d := range []Discipline{DisciplineNatural, DisciplineLockstep} {
		for _, alg := range []Phase2Algorithm{Phase2Serial, Phase2Wyllie, Phase2Recursive} {
			opt := Options{Seed: 49, Discipline: d, Phase2: alg, SerialCutoff: 64, Procs: 2}
			dst := make([]int64, l.Len())
			for i := range dst {
				dst[i] = sentinel
			}
			ScanInto(dst, l, opt, nil)
			for i, got := range dst {
				if got == sentinel {
					t.Fatalf("d=%d alg=%d: dst[%d] never written", d, alg, i)
				}
			}
			equal(t, dst, want, "sentinel scan")
			for i := range dst {
				dst[i] = sentinel
			}
			RanksInto(dst, l, opt, nil)
			for i, got := range dst {
				if got == sentinel {
					t.Fatalf("rank d=%d alg=%d: dst[%d] never written", d, alg, i)
				}
			}
			equal(t, dst, wantRank, "sentinel rank")
		}
	}
}

// TestScanOpIntoScratchNonCommutative exercises the generic engine's
// arena path (including the predecessor-oriented Phase 2 jumping) with
// a non-commutative operator, reusing one arena across calls.
func TestScanOpIntoScratchNonCommutative(t *testing.T) {
	packAffine := func(a, b int64) int64 { return a<<32 | (b & 0xffffffff) }
	affine := func(f, g int64) int64 {
		fa, fb := f>>32, int64(int32(f))
		ga, gb := g>>32, int64(int32(g))
		return ((ga * fa) % 9973 << 32) | (((ga*fb + gb) % 9973) & 0xffffffff)
	}
	r := rng.New(50)
	sc := NewScratch()
	for _, n := range []int{3000, 50000, 8000} {
		l := list.NewRandom(n, r)
		for i := range l.Value {
			l.Value[i] = packAffine(int64(r.Intn(7)+1), int64(r.Intn(50)))
		}
		id := packAffine(1, 0)
		want := serial.ScanOp(l, affine, id)
		for _, alg := range []Phase2Algorithm{Phase2Serial, Phase2Wyllie, Phase2Recursive} {
			dst := make([]int64, n)
			ScanOpInto(dst, l, affine, id, Options{Seed: 51, Phase2: alg, SerialCutoff: 64, Procs: 3}, sc)
			equal(t, dst, want, "scanop arena")
		}
	}
}
