package core

import (
	"listrank/internal/chaos"
	"listrank/internal/kernel"
)

// Strip wrappers around the Phase 1/3 chase kernels: each runs its
// kernel over [lo, hi) in cancelStride-sublist strips, polling the
// Cancel token (and the chaos chunk hook) between strips. Sublists are
// independent, so splitting the range changes nothing about the
// results — only how often the worker surfaces for air. A worker that
// observes cancellation simply stops chasing; the orchestrator's next
// phase-boundary checkpoint turns the partial phase into ErrCanceled.
// With a nil token the poll is two predictable branches per
// cancelStride sublists (each ~log n links of chasing), which is the
// "bounded check cost" EXPERIMENTS.md quantifies.

func stripSumAdd(cn *Cancel, next, values, h, sum, cur []int64, lo, hi, lanes int) {
	for s := lo; s < hi; s += cancelStride {
		chaos.Point(chaos.PointChunk)
		if cn.Canceled() {
			return
		}
		e := min(s+cancelStride, hi)
		kernel.SumAdd(next, values, h, sum, cur, s, e, lanes)
	}
}

func stripExpandAdd(cn *Cancel, out, next, values, h, pfx []int64, lo, hi, lanes int) {
	for s := lo; s < hi; s += cancelStride {
		chaos.Point(chaos.PointChunk)
		if cn.Canceled() {
			return
		}
		e := min(s+cancelStride, hi)
		kernel.ExpandAdd(out, next, values, h, pfx, s, e, lanes)
	}
}

func stripSumEnc(cn *Cancel, enc []uint64, h, sum, cur []int64, lo, hi, lanes int) {
	for s := lo; s < hi; s += cancelStride {
		chaos.Point(chaos.PointChunk)
		if cn.Canceled() {
			return
		}
		e := min(s+cancelStride, hi)
		kernel.SumEnc(enc, h, sum, cur, s, e, lanes)
	}
}

func stripExpandEnc(cn *Cancel, out []int64, enc []uint64, h, pfx []int64, lo, hi, lanes int) {
	for s := lo; s < hi; s += cancelStride {
		chaos.Point(chaos.PointChunk)
		if cn.Canceled() {
			return
		}
		e := min(s+cancelStride, hi)
		kernel.ExpandEnc(out, enc, h, pfx, s, e, lanes)
	}
}

func stripSumOp(cn *Cancel, next, values, h, sum, cur []int64, op func(a, b int64) int64, identity int64, lo, hi, lanes int) {
	for s := lo; s < hi; s += cancelStride {
		chaos.Point(chaos.PointChunk)
		if cn.Canceled() {
			return
		}
		e := min(s+cancelStride, hi)
		kernel.SumOp(next, values, h, sum, cur, op, identity, s, e, lanes)
	}
}

func stripExpandOp(cn *Cancel, out, next, values, h, pfx []int64, op func(a, b int64) int64, lo, hi, lanes int) {
	for s := lo; s < hi; s += cancelStride {
		chaos.Point(chaos.PointChunk)
		if cn.Canceled() {
			return
		}
		e := min(s+cancelStride, hi)
		kernel.ExpandOp(out, next, values, h, pfx, op, s, e, lanes)
	}
}
