package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"listrank/internal/chaos"
)

// This file is the engine's cooperative cancellation machinery. The
// serving layer cannot afford a request that runs forever: one
// oversized or deadline-blown problem would occupy an engine (and its
// shard's worker pool) while every request queued behind it waits. But
// the engine's hot loops are exactly the loops the whole repository
// exists to keep lean — a per-link check would tax the steady state
// the paper's accounting is about. The compromise is bounded-cost
// polling: a Cancel is consulted at phase boundaries and between
// kernel chunk strips (cancelStride sublists of chasing per check, so
// the check amortizes to well under one instruction per link —
// EXPERIMENTS.md measures the overhead at ≤ the noise floor), and a
// run that observes cancellation abandons the problem at the next
// boundary by panicking with ErrCanceled, which the caller's
// containment (listrank.Server's per-ticket recover) converts into the
// ticket's error. The engine's setup/restore pair is deferred, so an
// abandoned run still restores the caller's list before unwinding.

// ErrCanceled is the panic value a canceled run unwinds with at its
// next cancellation checkpoint. It escapes only to callers that armed
// Options.Cancel — the serving layer — which recover it and classify
// the request as expired rather than poisoned.
var ErrCanceled = errors.New("core: run canceled")

// cancelStride is the number of sublists a worker chases between
// cooperative cancellation checks in the Phase 1/3 chunk loops. At the
// default m ≈ n/log n the stride spans roughly cancelStride·log n
// links (tens of microseconds of chasing), which bounds both the check
// overhead (one atomic load, occasionally a clock read, per stride)
// and the latency of noticing a cancellation.
const cancelStride = 1024

// Cancel is a reusable cooperative cancellation token: a trip flag, an
// optional wall-clock deadline and an optional context, polled
// together by the engine's bounded checkpoints. The zero value is an
// unarmed token; Arm it per run and Reset it between runs. A Cancel
// may be observed from many workers concurrently; Trip is safe from
// any goroutine. Allocation-free: the serving layer embeds one per
// ticket and recycles it with the ticket.
type Cancel struct {
	tripped atomic.Bool
	// deadline is unix nanoseconds; 0 means none. Written only by
	// Arm/Reset (before the run starts), read by any worker.
	deadline atomic.Int64
	// ctx is polled via Err; nil means none. Same write discipline as
	// deadline.
	ctx context.Context
}

// Arm configures the token for one run: a zero deadline means no
// deadline, a nil ctx means no context. Arm must happen-before the
// run observes the token (the serving layer arms at submission).
func (c *Cancel) Arm(ctx context.Context, deadline time.Time) {
	c.tripped.Store(false)
	if deadline.IsZero() {
		c.deadline.Store(0)
	} else {
		c.deadline.Store(deadline.UnixNano())
	}
	c.ctx = ctx
}

// Reset disarms the token and drops its context reference so a
// recycled holder never pins a finished request's context.
func (c *Cancel) Reset() {
	c.tripped.Store(false)
	c.deadline.Store(0)
	c.ctx = nil
}

// Trip requests cancellation; the run abandons the problem at its
// next checkpoint.
func (c *Cancel) Trip() { c.tripped.Store(true) }

// Canceled reports whether the run should stop: tripped, past the
// deadline, or the context is done. Nil receivers report false, so
// call sites need no guard.
func (c *Cancel) Canceled() bool {
	if c == nil {
		return false
	}
	if c.tripped.Load() {
		return true
	}
	if d := c.deadline.Load(); d != 0 && time.Now().UnixNano() >= d {
		return true
	}
	return c.ctx != nil && c.ctx.Err() != nil
}

// DeadlineExceeded reports whether the token's deadline (if any) has
// passed — the classifier the serving layer uses to pick between
// "expired" and "canceled" for an abandoned run.
func (c *Cancel) DeadlineExceeded() bool {
	if c == nil {
		return false
	}
	d := c.deadline.Load()
	return d != 0 && time.Now().UnixNano() >= d
}

// checkpoint is the phase-boundary cancellation (and chaos) hook: it
// runs on the orchestrating goroutine between the engine's phases and
// abandons a canceled run by panicking with ErrCanceled. point names
// the phase about to start, for the chaos harness's panic-at-phase-K
// injection.
func (o *Options) checkpoint(point string) {
	chaos.Point(point)
	if o.Cancel.Canceled() {
		panic(ErrCanceled)
	}
}
