package core

import (
	"fmt"
	"testing"

	"listrank/internal/list"
	"listrank/internal/par"
	"listrank/internal/rng"
)

// The lane-interleaved kernels must be invisible in the results: for
// every lane width, every Procs and every engine path (encoded rank,
// addition scan, generic-operator scan), the output must equal the
// single-cursor serial oracle's — and, since the splitter draw depends
// only on the seed, must be bit-identical across all of them.

var laneTestWidths = []int{1, 2, 4, 8, 16, 32}

// laneTestLists builds the odd list shapes the kernels must survive:
// random order (the benchmark workload), sequential order, and sizes
// around the serial cutoff and chunk boundaries.
func laneTestLists() map[string]*list.List {
	return map[string]*list.List{
		"random-2k":   list.NewRandom(2048, rng.New(3)),  // just above SerialCutoff
		"random-20k":  list.NewRandom(20000, rng.New(4)), // odd size, many refills
		"ordered-10k": list.NewOrdered(10000),
		"random-300k": list.NewRandom(300000, rng.New(5)), // mid regime, multi-chunk
	}
}

func TestLaneWidthsAgree(t *testing.T) {
	for name, l := range laneTestLists() {
		n := l.Len()
		want := Ranks(l, Options{Seed: 12, Discipline: DisciplineNatural})
		wantScan := Scan(l, Options{Seed: 12, Discipline: DisciplineNatural})
		// Order-sensitive probe op, deliberately non-associative: every
		// run below shares the oracle's seed and therefore its sublist
		// decomposition and Phase 2 grouping, so any difference in fold
		// order — the thing lane interleaving must not change — shows.
		op := func(a, b int64) int64 { return 3*a + b }
		wantOp := ScanOp(l, op, 0, Options{Seed: 12, Discipline: DisciplineNatural})
		for _, procs := range []int{1, 4} {
			for _, K := range laneTestWidths {
				t.Run(fmt.Sprintf("%s/procs=%d/K=%d", name, procs, K), func(t *testing.T) {
					opt := Options{Seed: 12, Procs: procs, LaneWidth: K}
					got := Ranks(l, opt)
					for v := 0; v < n; v++ {
						if got[v] != want[v] {
							t.Fatalf("Ranks: vertex %d: got %d, want %d", v, got[v], want[v])
						}
					}
					got = Scan(l, opt)
					for v := 0; v < n; v++ {
						if got[v] != wantScan[v] {
							t.Fatalf("Scan: vertex %d: got %d, want %d", v, got[v], wantScan[v])
						}
					}
					got = ScanOp(l, op, 0, opt)
					for v := 0; v < n; v++ {
						if got[v] != wantOp[v] {
							t.Fatalf("ScanOp: vertex %d: got %d, want %d", v, got[v], wantOp[v])
						}
					}
				})
			}
		}
	}
}

// TestLaneWidthExtremes: degenerate splitter populations — M far
// larger than the lane supply (all-singleton sublists, constant
// refill) and M=1 (two sublists, most lanes never fill).
func TestLaneWidthExtremes(t *testing.T) {
	l := list.NewRandom(5000, rng.New(9))
	want := Ranks(l, Options{Seed: 5, Discipline: DisciplineNatural, SerialCutoff: 1})
	for _, m := range []int{1, 2, 2500} {
		for _, K := range laneTestWidths {
			opt := Options{Seed: 5, M: m, LaneWidth: K, SerialCutoff: 1}
			got := Ranks(l, opt)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("M=%d K=%d: vertex %d: got %d, want %d", m, K, v, got[v], want[v])
				}
			}
		}
	}
}

// TestLaneWidthStatsInvariant: the natural-discipline link count is
// exactly 2n links (n per phase) at every lane width — lanes add
// memory-level parallelism, not work (no lockstep idle steps).
func TestLaneWidthStatsInvariant(t *testing.T) {
	l := list.NewRandom(1<<15, rng.New(2))
	for _, K := range laneTestWidths {
		var st Stats
		_ = Ranks(l, Options{Seed: 3, LaneWidth: K, Stats: &st})
		if st.LinksTraversed != int64(2*l.Len()) {
			t.Errorf("K=%d: LinksTraversed = %d, want %d", K, st.LinksTraversed, 2*l.Len())
		}
		if st.PackRounds != 0 {
			t.Errorf("K=%d: PackRounds = %d, want 0", K, st.PackRounds)
		}
	}
}

// TestLaneWidthZeroAlloc: the lane kernels keep the engine's warm
// zero-allocation guarantee at Procs 1 and 4 for explicit widths too.
func TestLaneWidthZeroAlloc(t *testing.T) {
	l := list.NewRandom(1<<16, rng.New(8))
	dst := make([]int64, l.Len())
	for _, procs := range []int{1, 4} {
		pl := par.NewPool(procs)
		sc := NewScratch()
		sc.SetPool(pl)
		for _, K := range []int{1, 8, 32} {
			opt := Options{Seed: 4, Procs: procs, LaneWidth: K}
			RanksInto(dst, l, opt, sc) // warm
			ScanInto(dst, l, opt, sc)
			allocs := testing.AllocsPerRun(3, func() {
				RanksInto(dst, l, opt, sc)
				ScanInto(dst, l, opt, sc)
			})
			if allocs != 0 {
				t.Errorf("procs=%d K=%d: %v allocs/op, want 0", procs, K, allocs)
			}
		}
		pl.Close()
	}
}
