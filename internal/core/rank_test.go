package core

import (
	"testing"
	"testing/quick"

	"listrank/internal/list"
	"listrank/internal/rng"
	"listrank/internal/serial"
)

// TestRanksEncodedMatchesSerial drives the single-gather engine across
// shapes, disciplines and processor counts.
func TestRanksEncodedMatchesSerial(t *testing.T) {
	shapes := map[string]*list.List{
		"random-2k":   list.NewRandom(2048, rng.New(1)),
		"random-9k":   list.NewRandom(9001, rng.New(2)),
		"ordered-4k":  list.NewOrdered(4096),
		"reversed-4k": list.NewReversed(4096),
		"blocked-5k":  list.NewBlocked(5000, 13, rng.New(3)),
	}
	for name, l := range shapes {
		want := serial.Ranks(l)
		for _, d := range []Discipline{DisciplineNatural, DisciplineLockstep} {
			for _, procs := range []int{1, 4} {
				var st Stats
				got := Ranks(l, Options{Procs: procs, Discipline: d, Stats: &st})
				if !st.Encoded {
					t.Fatalf("%s d=%d procs=%d: encoded engine not used", name, d, procs)
				}
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%s d=%d procs=%d: rank[%d] = %d, want %d",
							name, d, procs, v, got[v], want[v])
					}
				}
			}
		}
	}
}

// TestRanksEncodedDoesNotMutate checks the encoded engine's
// no-mutation guarantee (the cuts live only in the derived array).
func TestRanksEncodedDoesNotMutate(t *testing.T) {
	l := list.NewRandom(8192, rng.New(7))
	l.RandomValues(-5, 5, rng.New(8))
	before := l.Clone()
	Ranks(l, Options{Procs: 3})
	for v := range l.Next {
		if l.Next[v] != before.Next[v] || l.Value[v] != before.Value[v] {
			t.Fatalf("vertex %d mutated", v)
		}
	}
	if l.Head != before.Head {
		t.Fatalf("head mutated")
	}
}

// TestRanksDisableEncoding checks the ablation escape hatch routes
// through the generic engine and still agrees.
func TestRanksDisableEncoding(t *testing.T) {
	l := list.NewRandom(6000, rng.New(9))
	want := serial.Ranks(l)
	var st Stats
	got := Ranks(l, Options{DisableEncoding: true, Stats: &st})
	if st.Encoded {
		t.Fatal("DisableEncoding ignored")
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("rank[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

// TestRanksEncodedSerialCutoff: below the cutoff the serial path runs
// (no encoding) and is still correct.
func TestRanksEncodedSerialCutoff(t *testing.T) {
	l := list.NewRandom(100, rng.New(10))
	want := serial.Ranks(l)
	var st Stats
	got := Ranks(l, Options{Stats: &st})
	if st.Encoded {
		t.Fatal("encoded engine used below the serial cutoff")
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("rank[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

// TestRanksEncodedStats: the encoded lockstep run reports pack rounds
// and idle-inclusive link counts like the generic engine.
func TestRanksEncodedStats(t *testing.T) {
	l := list.NewRandom(1<<14, rng.New(11))
	var st Stats
	Ranks(l, Options{Discipline: DisciplineLockstep, Stats: &st})
	if st.PackRounds == 0 {
		t.Error("lockstep run reported zero pack rounds")
	}
	n := int64(l.Len())
	if st.LinksTraversed < 2*n-int64(st.Sublists)-1 {
		t.Errorf("LinksTraversed = %d, want >= about 2n = %d", st.LinksTraversed, 2*n)
	}
	if st.Sublists < 2 {
		t.Errorf("Sublists = %d, want >= 2", st.Sublists)
	}
}

// TestQuickRanksEncodedEqualGeneric: property — for random lists,
// encoded and generic engines agree vertex for vertex.
func TestQuickRanksEncodedEqualGeneric(t *testing.T) {
	f := func(seed uint64, sz uint16) bool {
		n := int(sz)%8000 + defaultSerialCutoff + 1
		l := list.NewRandom(n, rng.New(seed))
		a := Ranks(l, Options{Seed: seed})
		b := Ranks(l, Options{Seed: seed, DisableEncoding: true})
		for v := range a {
			if a[v] != b[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRanksEncodedSingleVertexSublists: an adversarial schedule and a
// huge splitter count produce many length-1 sublists, which exercise
// the park-on-arrival retirement paths.
func TestRanksEncodedSingleVertexSublists(t *testing.T) {
	l := list.NewRandom(3000, rng.New(13))
	want := serial.Ranks(l)
	got := Ranks(l, Options{M: 1500, Discipline: DisciplineLockstep, Schedule: []int{1, 2, 3}})
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("rank[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}
