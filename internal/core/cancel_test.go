package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"listrank/internal/list"
	"listrank/internal/rng"
)

// mustCancel runs f and asserts it panics with ErrCanceled.
func mustCancel(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("canceled run completed instead of panicking ErrCanceled")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrCanceled) {
			t.Fatalf("canceled run panicked with %v, want ErrCanceled", r)
		}
	}()
	f()
}

// checkRestored asserts the engine's deferred restore ran: the list is
// a valid single chain again and the all-ones values are untouched.
func checkRestored(t *testing.T, l *list.List) {
	t.Helper()
	if err := l.Validate(); err != nil {
		t.Fatalf("list not restored after canceled run: %v", err)
	}
	for i, v := range l.Value {
		if v != 1 {
			t.Fatalf("Value[%d] = %d after canceled run, want 1 (restored)", i, v)
		}
	}
}

// TestCancelPreTripped: a run whose token is tripped before it starts
// must abandon at the first phase boundary with ErrCanceled, restoring
// the list on the way out. Exercised across both engines (rank and
// generic scan) and both Procs regimes.
func TestCancelPreTripped(t *testing.T) {
	const n = 1 << 15
	for _, procs := range []int{1, 4} {
		l := list.NewRandom(n, rng.New(7))
		out := make([]int64, n)
		var cn Cancel
		cn.Trip()
		mustCancel(t, func() {
			RanksInto(out, l, Options{Procs: procs, Cancel: &cn}, nil)
		})
		checkRestored(t, l)

		sl := list.NewRandom(n, rng.New(8))
		mustCancel(t, func() {
			ScanInto(out, sl, Options{Procs: procs, Cancel: &cn}, nil)
		})
		checkRestored(t, sl)
	}
}

// TestCancelMidRun: tripping the token from another goroutine while
// the engine is chasing must abandon the run at a later strip or phase
// boundary, not run to completion oblivious and not hang.
func TestCancelMidRun(t *testing.T) {
	const n = 1 << 20
	l := list.NewRandom(n, rng.New(11))
	out := make([]int64, n)
	var cn Cancel
	done := make(chan struct{})
	go func() {
		time.Sleep(200 * time.Microsecond) // land mid-phase with high probability
		cn.Trip()
		close(done)
	}()
	// The run either finishes before the trip lands (fine) or must
	// unwind with ErrCanceled; anything else fails.
	func() {
		defer func() {
			if r := recover(); r != nil {
				err, ok := r.(error)
				if !ok || !errors.Is(err, ErrCanceled) {
					t.Fatalf("mid-run cancel panicked with %v, want ErrCanceled", r)
				}
			}
		}()
		RanksInto(out, l, Options{Procs: 4, Cancel: &cn}, nil)
	}()
	<-done
	checkRestored(t, l)
}

// TestCancelDeadlineAndContext: both expiry sources trip Canceled, and
// Reset disarms them so a recycled token serves the next run.
func TestCancelDeadlineAndContext(t *testing.T) {
	var cn Cancel
	cn.Arm(nil, time.Now().Add(-time.Second))
	if !cn.Canceled() || !cn.DeadlineExceeded() {
		t.Fatal("expired deadline not observed")
	}
	cn.Reset()
	if cn.Canceled() {
		t.Fatal("Reset left the token canceled")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cn.Arm(ctx, time.Time{})
	if cn.Canceled() {
		t.Fatal("live context observed as canceled")
	}
	cancel()
	if !cn.Canceled() {
		t.Fatal("done context not observed")
	}
	if cn.DeadlineExceeded() {
		t.Fatal("context cancellation misreported as deadline expiry")
	}
	cn.Reset()
	if cn.Canceled() {
		t.Fatal("Reset left the context armed")
	}

	// A nil token is never canceled (the engine's default path).
	var nilTok *Cancel
	if nilTok.Canceled() || nilTok.DeadlineExceeded() {
		t.Fatal("nil Cancel reported canceled")
	}
}

// BenchmarkCancelOverhead measures the cost of the cooperative
// cancellation checks on a warm whole-list rank at 2^22: "off" runs
// with a nil token (the default path — nil-receiver methods
// short-circuit), "armed" with a live deadline+context token polled at
// every phase boundary, kernel strip and lockstep round. The armed
// column must stay within 2% of off (EXPERIMENTS.md, "Cancellation
// overhead").
func BenchmarkCancelOverhead(b *testing.B) {
	const n = 1 << 22
	l := list.NewRandom(n, rng.New(5))
	out := make([]int64, n)
	for _, procs := range []int{1, 4} {
		for _, mode := range []string{"off", "armed"} {
			var cn *Cancel
			if mode == "armed" {
				cn = new(Cancel)
				cn.Arm(context.Background(), time.Now().Add(24*time.Hour))
			}
			b.Run(fmt.Sprintf("procs%d/%s", procs, mode), func(b *testing.B) {
				opt := Options{Procs: procs, Cancel: cn}
				sc := NewScratch()
				RanksInto(out, l, opt, sc) // warm the arena
				b.SetBytes(8 * n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					opt.Seed = uint64(i)
					RanksInto(out, l, opt, sc)
				}
			})
		}
	}
}

// TestCancelLockstepAndOp: the lockstep discipline and the generic
// operator engine honor pre-tripped tokens too.
func TestCancelLockstepAndOp(t *testing.T) {
	const n = 1 << 14
	var cn Cancel
	cn.Trip()
	out := make([]int64, n)
	for _, procs := range []int{1, 2} {
		l := list.NewRandom(n, rng.New(3))
		mustCancel(t, func() {
			ScanInto(out, l, Options{Procs: procs, Discipline: DisciplineLockstep, Cancel: &cn}, nil)
		})
		checkRestored(t, l)

		ol := list.NewRandom(n, rng.New(4))
		mustCancel(t, func() {
			ScanOpInto(out, ol, func(a, b int64) int64 { return max(a, b) }, 0, Options{Procs: procs, Cancel: &cn}, nil)
		})
		checkRestored(t, ol)
	}
}
