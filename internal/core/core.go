// Package core implements the paper's list-ranking / list-scan
// algorithm (§2.5, §3): randomized sublist contraction with small
// constants.
//
// The algorithm breaks symmetry by randomly dividing the linked list of
// length n into at most m+1 sublists that are processed independently
// and in parallel:
//
//	Phase 1: traverse each sublist, accumulating the "sum" of its
//	         values, and link the sublist sums into a reduced list of
//	         at most m+1 nodes in original list order.
//	Phase 2: list-scan the reduced list (serially when it is short,
//	         with Wyllie's pointer jumping at moderate sizes, or
//	         recursively with this same algorithm when it is large).
//	         The scan values become the scan values of the sublist
//	         heads.
//	Phase 3: traverse each sublist again, expanding the head's scan
//	         value across the sublist.
//
// The implementation mirrors the paper's engineering devices:
//
//   - Splitters are chosen at random vertices; a chosen vertex becomes
//     the *tail* of the preceding sublist and its successor becomes the
//     head of a new sublist (Fig. 4). Duplicate choices are eliminated
//     by the paper's write/read competition: every virtual processor
//     writes its index at its chosen position and the ones that read a
//     different index back drop out.
//   - Each sublist tail is terminated with a self-loop and its value is
//     destructively set to the operator identity, so the traversal
//     loops contain no conditional tests: walking past the end of a
//     completed sublist just folds in the identity (§3, Phase 1).
//   - Successor sublists are discovered by writing the virtual
//     processor index at the chosen position and reading the index
//     stored at the tail the traversal reached (Fig. 6). The processor
//     that finds no index owns the tail sublist.
//   - On multiple processors, the virtual processors (sublists) are
//     assigned to workers once, each worker completes Phases 1 and 3
//     on its share independently, and only a constant number of
//     synchronizations occur (§5).
//
// Two Phase 1/3 traversal disciplines are provided. The natural MIMD
// discipline walks each sublist to completion, which is optimal for
// coarse goroutine parallelism. The lockstep discipline advances all
// active sublists one link at a time and periodically load-balances by
// packing completed sublists out of the working set on the schedule of
// §4 — the exact structure of the paper's vectorized implementation,
// kept here both to validate the schedule machinery and as an ablation
// (see package vecalg for the cycle-accurate vector version).
//
// All working space — the virtual-processor table, splitter buffers,
// encoded words, lockstep active sets and Phase 2 storage — lives in a
// reusable Scratch arena (scratch.go). The package-level entry points
// draw arenas from a pool; callers with a steady stream of problems
// hold one Scratch (via listrank.Engine) and perform zero heap
// allocations per call once the arena is warm.
package core

import (
	"math/bits"
	"sync/atomic"

	"listrank/internal/chaos"
	"listrank/internal/kernel"
	"listrank/internal/list"
	"listrank/internal/par"
	"listrank/internal/rng"
)

// Phase2Algorithm selects how the reduced list of sublist sums is
// scanned in Phase 2.
type Phase2Algorithm int

const (
	// Phase2Auto picks serial, Wyllie or recursive by reduced-list
	// length, mirroring the paper's empirically determined switchover.
	Phase2Auto Phase2Algorithm = iota
	// Phase2Serial always scans the reduced list serially.
	Phase2Serial
	// Phase2Wyllie always uses pointer jumping.
	Phase2Wyllie
	// Phase2Recursive always recurses with this algorithm (bottoming
	// out serially below the small-list threshold).
	Phase2Recursive
)

// Stats reports what a run did; pass a pointer in Options to collect.
type Stats struct {
	// Sublists is the number of sublists after duplicate elimination
	// (at most M+1).
	Sublists int
	// DuplicatesDropped counts splitter choices lost to the
	// write/read competition.
	DuplicatesDropped int
	// Phase2Len is the reduced-list length handed to Phase 2.
	Phase2Len int
	// Phase2Used is the algorithm Phase 2 actually ran.
	Phase2Used Phase2Algorithm
	// Depth is the recursion depth (0 when Phase 2 did not recurse).
	Depth int
	// PackRounds is the number of load-balancing steps performed by
	// the lockstep discipline (0 for the natural discipline).
	PackRounds int
	// LinksTraversed counts every link-following step of Phases 1 and
	// 3, including the idle steps lockstep traversal spends on
	// completed sublists. The natural discipline performs exactly
	// 2n - (sublist count) ... ≈ 2n of them; the lockstep overshoot
	// above that is the quantity the §4 schedule minimizes.
	LinksTraversed int64
	// Encoded reports whether the run used the rank-specialized
	// single-gather encoded-word engine (§3).
	Encoded bool
	// ReserveDrawn and ReserveActivated count the §7 oversampling
	// extension's reserve splitters: drawn at setup, and actually
	// activated to subdivide surviving long sublists.
	ReserveDrawn     int
	ReserveActivated int
}

// Options configures the algorithm. The zero value selects automatic
// parameters: m ≈ n/log2(n) splitters, one worker, auto Phase 2.
type Options struct {
	// Seed seeds splitter selection. Runs with equal seeds and equal
	// options are deterministic, and the splitter draw itself depends
	// only on Seed and M — never on Procs.
	Seed uint64
	// M is the number of splitters (the list is cut into at most M+1
	// sublists). M <= 0 selects DefaultM(n).
	M int
	// Procs is the number of workers for setup and Phases 1 and 3.
	// Values < 1 mean 1. Multi-worker phases dispatch onto the arena's
	// resident worker pool (par.Pool, layer 0 of the arena
	// architecture) rather than spawning goroutines per call.
	Procs int
	// Phase2 selects the reduced-list scan algorithm.
	Phase2 Phase2Algorithm
	// SerialCutoff is the list length at or below which the whole
	// problem is solved serially (the paper's Fig. 1 crossover region:
	// parallel overhead dominates below about a thousand vertices).
	// <= 0 selects 1024.
	SerialCutoff int
	// Discipline selects the Phase 1/3 traversal discipline.
	Discipline Discipline
	// LaneWidth is the number of independent sublist cursors each
	// worker interleaves in the Phase 1/3 chase loops (the software
	// analog of the paper's vector lanes; see internal/kernel). 0
	// selects the tuned per-regime default (kernel.DefaultWidth);
	// values are clamped to [1, kernel.MaxLanes]. 1 is the serial
	// single-cursor walk. Results are identical for every width; only
	// the number of memory loads in flight differs. Ignored by the
	// natural discipline (always 1) and the lockstep discipline (whose
	// active set plays the role of the lanes).
	LaneWidth int
	// Schedule is the lockstep pack schedule: Schedule[i] is the total
	// number of links each active sublist has traversed before the
	// i-th load balance. Empty selects a geometric default derived
	// from the expected exponential sublist-length distribution (§4).
	Schedule []int
	// DisableEncoding turns off the rank-specialized single-gather
	// encoded-word engine (§3, see rank.go), forcing Ranks through the
	// generic scan over a ones array. It exists for the
	// BenchmarkAblation_EncodedRank comparison.
	DisableEncoding bool
	// Cancel, if non-nil, makes the run cooperatively cancelable: it is
	// polled at phase boundaries and between kernel chunk strips (see
	// cancel.go for the cost bound), and a run that observes
	// cancellation panics with ErrCanceled at its next phase boundary —
	// after the deferred restore has un-mutated the caller's list. Nil
	// (the default) compiles the checks down to nil-receiver
	// short-circuits.
	Cancel *Cancel
	// Oversample enables the §7 oversampling extension in the
	// lockstep discipline: a reserve pool of Oversample·M extra
	// splitters is drawn, and when the active set first shrinks below
	// OversampleTrigger of its initial size, the still-relevant
	// reserves subdivide the surviving long sublists (see
	// oversample.go). 0 disables. Requires Procs == 1 and the explicit
	// lockstep discipline; otherwise it is silently ignored.
	Oversample float64
	// OversampleTrigger is the active-set fraction below which the
	// reserve pool activates; <= 0 or >= 1 selects 0.25.
	OversampleTrigger float64
	// Stats, if non-nil, is filled with run statistics.
	Stats *Stats
}

// Discipline selects how Phases 1 and 3 traverse the sublists.
type Discipline int

const (
	// DisciplineAuto walks sublists to completion in natural order
	// with a lane-interleaved chase (internal/kernel): each worker
	// advances LaneWidth independent sublist cursors round-robin, so
	// that many cache misses are in flight per worker instead of one —
	// the modern out-of-order-core analogue of the latency hiding the
	// paper obtains from vector gathers over virtual processors
	// (§1.1). It is the default and the fastest discipline at every
	// size; the lane width defaults to the tuned per-regime constant.
	DisciplineAuto Discipline = iota
	// DisciplineNatural walks each sublist to completion with a single
	// cursor — the serial chase, one dependent load in flight. It is
	// the lanes=1 case of the kernel, kept as the correctness oracle
	// the lane-interleaved paths are tested against.
	DisciplineNatural
	// DisciplineLockstep always advances all active sublists one link
	// per step with periodic packing on the §4 schedule — the exact
	// structure of the paper's vector implementation, kept to validate
	// the schedule machinery and as an ablation target.
	DisciplineLockstep
)

func (o Options) lockstep(n int) bool {
	return o.Discipline == DisciplineLockstep
}

// laneWidth resolves the chase-kernel lane width for this run: the
// explicit LaneWidth if set, the tuned per-regime default otherwise,
// and always 1 under the natural (single-cursor oracle) discipline.
func (o Options) laneWidth(n int) int {
	if o.Discipline == DisciplineNatural {
		return 1
	}
	return kernel.Width(o.LaneWidth, n)
}

// DefaultM returns the default splitter count for a list of n
// vertices: n/⌈log2 n⌉, the paper's m ≈ n/log n guidance, which makes
// the expected sublist length about log n and keeps the Phase 2
// problem a log-factor smaller than the input.
func DefaultM(n int) int {
	if n < 4 {
		return 0
	}
	return n / bits.Len(uint(n-1))
}

const defaultSerialCutoff = 1024

func (o Options) withDefaults(n int) Options {
	if o.SerialCutoff <= 0 {
		o.SerialCutoff = defaultSerialCutoff
	}
	if o.M <= 0 {
		o.M = DefaultM(n)
	}
	if o.M > n/2 {
		o.M = n / 2
	}
	if o.Procs < 1 {
		o.Procs = 1
	}
	return o
}

// Ranks returns, for each vertex of l, the number of vertices that
// precede it in the list. Unless disabled (or the list is enormous),
// it runs the rank-specialized single-gather engine over encoded
// link+addend words (§3), which reads one memory stream per link and
// never mutates l. Working space comes from a pooled Scratch.
func Ranks(l *list.List, opt Options) []int64 {
	out := make([]int64, l.Len())
	sc := getScratch()
	RanksInto(out, l, opt, sc)
	putScratch(sc)
	return out
}

// RanksInto is Ranks into caller-provided storage of length l.Len(),
// drawing all working space from sc (nil borrows a pooled arena). With
// a warm sc, steady-state calls perform zero heap allocations at any
// Procs: single-worker phases run inline, and multi-worker phases
// dispatch onto resident pool workers (sc's own pool, or the
// process-wide par.Shared() pool) through closure-free task bodies.
func RanksInto(dst []int64, l *list.List, opt Options, sc *Scratch) {
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	defer sc.releaseCall()
	n := l.Len()
	o := opt.withDefaults(n)
	if !o.DisableEncoding && n > o.SerialCutoff && n < encMaxLen && o.M >= 1 {
		ranksEnc(dst, l, o, 0, sc)
		return
	}
	ones := sc.onesFor(n)
	scanAdd(dst, l, ones, opt, 0, sc)
}

// Scan returns the exclusive list scan of l under integer addition.
func Scan(l *list.List, opt Options) []int64 {
	out := make([]int64, l.Len())
	sc := getScratch()
	ScanInto(out, l, opt, sc)
	putScratch(sc)
	return out
}

// ScanInto is Scan into caller-provided storage of length l.Len(),
// drawing all working space from sc (nil borrows a pooled arena).
func ScanInto(dst []int64, l *list.List, opt Options, sc *Scratch) {
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	defer sc.releaseCall()
	scanAdd(dst, l, l.Value, opt, 0, sc)
}

// ScanOp returns the exclusive list scan of l under an arbitrary
// associative operator with the given identity, combining strictly
// preceding values in list order (safe for non-commutative operators).
func ScanOp(l *list.List, op func(a, b int64) int64, identity int64, opt Options) []int64 {
	out := make([]int64, l.Len())
	sc := getScratch()
	ScanOpInto(out, l, op, identity, opt, sc)
	putScratch(sc)
	return out
}

// ScanOpInto is ScanOp into caller-provided storage of length l.Len(),
// drawing all working space from sc (nil borrows a pooled arena).
func ScanOpInto(dst []int64, l *list.List, op func(a, b int64) int64, identity int64, opt Options, sc *Scratch) {
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	defer sc.releaseCall()
	scanOp(dst, l, l.Value, op, identity, opt, 0, sc)
}

// vp holds the per-virtual-processor (per-sublist) state. The paper
// stores five words per virtual processor (Table II: 5p+c space); we
// keep the same asymptotics with parallel arrays, backed by the
// Scratch arena so they are allocated once and reused.
type vps struct {
	r     []int64 // splitter vertex: tail of the *previous* sublist (-1 for vp 0)
	h     []int64 // sublist head
	saved []int64 // original value at the splitter (identity-overwritten)
	sum   []int64 // Phase 1 accumulation / Phase 2 reduced value
	cur   []int64 // traversal cursor / tail reached
	succ  []int32 // successor sublist index (self for the tail sublist)
	pfx   []int64 // Phase 2 result: scan value for the sublist head
}

// findTail locates the list's tail (the unique self-loop) by scanning
// the Next array in parallel chunks. This replaces the O(n) serial
// pointer chase of list.Tail with a memory-sequential search that both
// vectorizes and parallelizes — part of removing the serial prologue
// from the otherwise-parallel algorithm.
func findTail(l *list.List, p int, sc *Scratch) int64 {
	next := l.Next
	n := len(next)
	p = par.Procs(p, n)
	if p == 1 {
		for i, nx := range next {
			if nx == int64(i) {
				return int64(i)
			}
		}
		panic("core: list has no tail self-loop")
	}
	sc.tails = grow(sc.tails, p)
	found := sc.tails
	sc.fc.next = next
	sc.fanout().ForChunksCtx(n, p, sc, taskFindTail)
	for _, t := range found {
		if t >= 0 {
			return t
		}
	}
	panic("core: list has no tail self-loop")
}

// taskFindTail scans chunk [lo, hi) of the Next array for the
// self-loop, parking the find (or -1) in the worker's tails slot.
func taskFindTail(c any, w, lo, hi int) {
	sc := c.(*Scratch)
	next := sc.fc.next
	sc.tails[w] = -1
	for i := lo; i < hi; i++ {
		if next[i] == int64(i) {
			sc.tails[w] = int64(i)
			return
		}
	}
}

// splitterChunk is the fixed granule of the parallel splitter draw:
// chunk c owns draw positions [c·splitterChunk, (c+1)·splitterChunk)
// and fills them from its own seed-derived stream. Because the grid is
// fixed, the drawn sequence depends only on the seed and M — never on
// the worker count — so runs are reproducible across Procs settings.
const splitterChunk = 4096

// drawSplitters draws m splitter positions (avoiding the tail), runs
// the paper's write/read duplicate-elimination competition in out, and
// returns the kept table (kept[0] is the -1 sentinel for the head
// sublist; kept[j] for j >= 1 is the j-th surviving splitter, in draw
// order) plus the number of duplicates dropped. On return every
// competition cell of out is zeroed again, including out[tail], which
// the later successor competition relies on.
// drawPosChunks fills draw-grid chunks [clo, chi) of pos from their
// seed-derived streams. It is a named function (not a closure) so the
// single-worker path calls it with no per-call allocation; closure
// literals are only evaluated on the multi-worker branch.
func drawPosChunks(pos []int64, n int, tail int64, seed uint64, clo, chi, m int) {
	for c := clo; c < chi; c++ {
		// Independent per-chunk streams: golden-ratio-spaced splitmix
		// states, the construction splitmix64 is designed for.
		var r rng.Rand
		r.Seed(seed + uint64(c)*0x9e3779b97f4a7c15)
		lo := c * splitterChunk
		hi := min(lo+splitterChunk, m)
		for i := lo; i < hi; i++ {
			for {
				q := int64(r.Intn(n))
				if q != tail {
					pos[i] = q
					break
				}
			}
		}
	}
}

// compactWinners appends the surviving splitters of draw range
// [lo, hi) to winners[lo:], in draw order, and returns their count.
func compactWinners(out, pos, winners []int64, lo, hi int) int {
	cnt := 0
	for j := lo; j < hi; j++ {
		if out[pos[j]] == int64(j+1) {
			winners[lo+cnt] = pos[j]
			cnt++
		}
	}
	return cnt
}

func drawSplitters(out []int64, n int, tail int64, m int, seed uint64, p int, sc *Scratch) ([]int64, int) {
	sc.pos = grow(sc.pos, m)
	pos := sc.pos
	chunks := (m + splitterChunk - 1) / splitterChunk
	if p == 1 {
		drawPosChunks(pos, n, tail, seed, 0, chunks, m)
	} else {
		sc.fc.n, sc.fc.tail, sc.fc.seed, sc.fc.m = n, tail, seed, m
		sc.fanout().ForChunksCtx(chunks, p, sc, taskDrawPos)
	}

	// Competition: write our (1-offset) index, read it back; losers
	// drop out. The serial path overwrites cells in ascending j order
	// so the largest j at a position wins; the parallel path
	// reproduces exactly that with a monotone CAS-max after clearing
	// the contested cells (out may arrive dirty from the caller).
	pm := par.Procs(p, m)
	if pm == 1 {
		for j, q := range pos {
			out[q] = int64(j + 1)
		}
	} else {
		sc.fc.out = out
		sc.fanout().ForChunksCtx(m, pm, sc, taskClearCells)
		sc.fanout().ForChunksCtx(m, pm, sc, taskCASMax)
	}

	// Read phase: each worker compacts its chunk's winners in draw
	// order into its own region of the staging buffer; the chunks are
	// then stitched serially, preserving global draw order.
	sc.winners = grow(sc.winners, m)
	sc.counts = grow(sc.counts, pm)
	winners, counts := sc.winners, sc.counts
	if pm == 1 {
		counts[0] = compactWinners(out, pos, winners, 0, m)
	} else {
		sc.fc.out = out
		sc.fanout().ForChunksCtx(m, pm, sc, taskCompactWinners)
	}
	sc.kept = grow(sc.kept, m+1)[:0]
	kept := append(sc.kept, -1) // vp 0: the head sublist, no splitter
	for w := 0; w < pm; w++ {
		lo, _ := par.Chunk(m, pm, w)
		kept = append(kept, winners[lo:lo+counts[w]]...)
	}
	sc.kept = kept
	dropped := m - (len(kept) - 1)

	// Clean the competition cells for the successor competition, which
	// relies on 0 meaning "nobody cut here" — including at the tail,
	// since out (the caller's dst) may have arrived dirty.
	if pm == 1 {
		for _, q := range pos {
			out[q] = 0
		}
	} else {
		sc.fanout().ForChunksCtx(m, pm, sc, taskClearCells)
	}
	out[tail] = 0
	return kept, dropped
}

// taskDrawPos, taskClearCells, taskCASMax and taskCompactWinners are
// the splitter draw's pool bodies; see drawSplitters for the phases.
func taskDrawPos(c any, _, clo, chi int) {
	sc := c.(*Scratch)
	drawPosChunks(sc.pos, sc.fc.n, sc.fc.tail, sc.fc.seed, clo, chi, sc.fc.m)
}

func taskClearCells(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	out, pos := sc.fc.out, sc.pos
	for j := lo; j < hi; j++ {
		atomic.StoreInt64(&out[pos[j]], 0)
	}
}

func taskCASMax(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	out, pos := sc.fc.out, sc.pos
	for j := lo; j < hi; j++ {
		a := &out[pos[j]]
		marker := int64(j + 1)
		for {
			cur := atomic.LoadInt64(a)
			if cur >= marker {
				break
			}
			if atomic.CompareAndSwapInt64(a, cur, marker) {
				break
			}
		}
	}
}

func taskCompactWinners(c any, w, lo, hi int) {
	sc := c.(*Scratch)
	sc.counts[w] = compactWinners(sc.fc.out, sc.pos, sc.winners, lo, hi)
}

// setup draws opt.M splitters, runs the duplicate-elimination
// competition (using out as the scratch cells the paper borrows from
// list storage), cuts the list, and returns the virtual processor
// table. Every stage — tail search, splitter draw, competition, cut
// and identity overwrite — runs in parallel chunks under opt.Procs,
// with results identical to the single-worker run. On return the list
// is mutated: every splitter and the global tail are self-looped(*)
// with identity values; restore() undoes this.
// (*) splitters are self-looped; the global tail already is.
func setup(out []int64, l *list.List, values []int64, identity int64, opt Options, sc *Scratch) (*vps, int64, int64) {
	n := l.Len()
	p := par.Procs(opt.Procs, n)
	tail := findTail(l, p, sc)
	kept, dropped := drawSplitters(out, n, tail, opt.M, opt.Seed, p, sc)

	k := len(kept)
	v := sc.vps(k)
	v.h[0] = l.Head
	v.r[0] = -1
	v.saved[0] = identity // never a real splitter; defensive
	savedTail := values[tail]
	// Cut the list and identity-overwrite the values at every sublist
	// tail so the branch-free traversal loops can run past the end
	// harmlessly. Splitter positions are distinct, so the per-j writes
	// touch disjoint cells and parallelize freely.
	if p == 1 {
		cutChunk(l.Next, values, v, kept, identity, 0, k-1)
	} else {
		sc.fc.next, sc.fc.values, sc.fc.identity = l.Next, values, identity
		sc.fanout().ForChunksCtx(k-1, p, sc, taskCut)
	}
	values[tail] = identity
	if st := opt.Stats; st != nil {
		st.Sublists = k
		st.DuplicatesDropped = dropped
	}
	return v, tail, savedTail
}

func taskCut(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	cutChunk(sc.fc.next, sc.fc.values, &sc.v, sc.kept, sc.fc.identity, lo, hi)
}

// cutChunk self-loops splitters kept[lo+1 .. hi] and records them in
// the vp table; index translation matches the chunked fan-out over k-1.
func cutChunk(next, values []int64, v *vps, kept []int64, identity int64, lo, hi int) {
	for j := lo + 1; j < hi+1; j++ {
		q := kept[j]
		v.r[j] = q
		v.h[j] = next[q]
		v.saved[j] = values[q]
		next[q] = q // terminate the previous sublist with a self-loop
		values[q] = identity
	}
}

// restore undoes the list mutations performed by setup.
func restore(l *list.List, values []int64, v *vps, tail, savedTail int64) {
	for j := 1; j < len(v.r); j++ {
		p := v.r[j]
		l.Next[p] = v.h[j]
		values[p] = v.saved[j]
	}
	values[tail] = savedTail
}

// findSuccessors runs the Fig. 6 write/read competition that links the
// sublist sums into the reduced list: vp j writes its (1-offset) index
// at its splitter, then reads the index at the tail its Phase 1
// traversal reached. Reading 0 means no processor cut there, i.e. the
// vp owns the tail sublist. It uses out as scratch; the marker cells
// are deliberately not cleaned here, because Phase 3 unconditionally
// writes every vertex of every sublist — splitter vertices included —
// so no marker can survive into the results. Every engine path runs
// Phase 3 after this; TestPhase3OverwritesSuccessorMarkers asserts the
// invariant.
func findSuccessors(out []int64, v *vps, p int, sc *Scratch) {
	k := len(v.r)
	if p == 1 {
		writeSuccMarkers(out, v, 0, k-1)
		readSuccessors(out, v, 0, k)
		return
	}
	sc.fc.out = out
	sc.fanout().ForChunksCtx(k-1, p, sc, taskWriteSuccMarkers)
	sc.fanout().ForChunksCtx(k, p, sc, taskReadSuccessors)
}

func taskWriteSuccMarkers(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	writeSuccMarkers(sc.fc.out, &sc.v, lo, hi)
}

func taskReadSuccessors(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	readSuccessors(sc.fc.out, &sc.v, lo, hi)
}

func writeSuccMarkers(out []int64, v *vps, lo, hi int) {
	for j := lo + 1; j < hi+1; j++ {
		out[v.r[j]] = int64(j)
	}
}

func readSuccessors(out []int64, v *vps, lo, hi int) {
	for j := lo; j < hi; j++ {
		s := out[v.cur[j]]
		if s == 0 {
			v.succ[j] = int32(j) // tail sublist
		} else {
			v.succ[j] = int32(s)
		}
	}
}

// scanAdd runs the full algorithm specialized to integer addition.
// The identity is 0. It writes the exclusive scan into out.
func scanAdd(out []int64, l *list.List, values []int64, opt Options, depth int, sc *Scratch) {
	n := l.Len()
	opt = opt.withDefaults(n)
	if st := opt.Stats; st != nil {
		st.Depth = depth
	}
	if n <= opt.SerialCutoff || opt.M < 1 {
		serialScanAddInto(out, l, values)
		return
	}
	if opt.oversampleEnabled(n) {
		scanAddOversampled(out, l, values, opt, depth, sc)
		return
	}
	v, tail, savedTail := setup(out, l, values, 0, opt, sc)
	defer restore(l, values, v, tail, savedTail)
	k := len(v.r)
	p := par.Procs(opt.Procs, k)
	lockstep := opt.lockstep(n)
	lanes := opt.laneWidth(n)

	// Phase 1: sublist sums via the lane-interleaved chase.
	opt.checkpoint(chaos.PointPhase1)
	if lockstep {
		lockstepPhase1(l, values, v, p, opt, sc)
	} else {
		if p == 1 {
			stripSumAdd(opt.Cancel, l.Next, values, v.h, v.sum, v.cur, 0, k, lanes)
		} else {
			sc.fc.next, sc.fc.values, sc.fc.lanes = l.Next, values, lanes
			sc.fc.cancel = opt.Cancel
			sc.fanout().ForChunksCtx(k, p, sc, taskSumAdd)
		}
		if opt.Stats != nil {
			opt.Stats.LinksTraversed += int64(n) // every vertex visited once
		}
	}

	// A canceled Phase 1 leaves v.cur partially stale (see the same
	// guard in ranksEnc); abandon before any stage consumes it.
	if opt.Cancel.Canceled() {
		panic(ErrCanceled)
	}
	findSuccessors(out, v, p, sc)

	// Fold each sublist's tail value (identity-overwritten in list
	// storage, preserved in saved) into the reduced value.
	if p == 1 {
		foldTailsAdd(v, 0, k)
	} else {
		sc.fanout().ForChunksCtx(k, p, sc, taskFoldTailsAdd)
	}

	// Phase 2: scan the reduced list of sublist sums.
	opt.checkpoint(chaos.PointPhase2)
	phase2Add(v, k, opt, depth, sc)

	// Phase 3: expand the head scan values across the sublists.
	opt.checkpoint(chaos.PointPhase3)
	if lockstep {
		lockstepPhase3(out, l, values, v, p, opt, sc)
	} else if p == 1 {
		stripExpandAdd(opt.Cancel, out, l.Next, values, v.h, v.pfx, 0, k, lanes)
	} else {
		sc.fc.out, sc.fc.next, sc.fc.values, sc.fc.lanes = out, l.Next, values, lanes
		sc.fc.cancel = opt.Cancel
		sc.fanout().ForChunksCtx(k, p, sc, taskExpandAdd)
	}
	// A cancellation observed mid-Phase 3 left out partially written;
	// surface it (the deferred restore still un-mutates the list).
	if opt.Cancel.Canceled() {
		panic(ErrCanceled)
	}
}

func taskSumAdd(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	stripSumAdd(sc.fc.cancel, sc.fc.next, sc.fc.values, sc.v.h, sc.v.sum, sc.v.cur, lo, hi, sc.fc.lanes)
}

func taskFoldTailsAdd(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	foldTailsAdd(&sc.v, lo, hi)
}

func taskExpandAdd(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	stripExpandAdd(sc.fc.cancel, sc.fc.out, sc.fc.next, sc.fc.values, sc.v.h, sc.v.pfx, lo, hi, sc.fc.lanes)
}

func foldTailsAdd(v *vps, lo, hi int) {
	for j := lo; j < hi; j++ {
		s := v.succ[j]
		if int(s) != j {
			v.sum[j] += v.saved[s]
		}
	}
}

// phase2Add scans the reduced list (v.sum linked by v.succ, head vp 0)
// into v.pfx using the configured Phase 2 algorithm. The reduced list
// is never materialized: the serial and Wyllie solvers operate
// directly on v.sum/v.succ, and the recursive solver reuses v.sum as
// its value array with only the int32 links widened into arena
// storage (see Scratch.reducedView).
func phase2Add(v *vps, k int, opt Options, depth int, sc *Scratch) {
	alg := opt.Phase2
	if alg == Phase2Auto {
		switch {
		case k <= 2048:
			alg = Phase2Serial
		case k <= 1<<16:
			alg = Phase2Wyllie
		default:
			alg = Phase2Recursive
		}
	}
	if st := opt.Stats; st != nil {
		st.Phase2Len = k
		st.Phase2Used = alg
	}
	switch alg {
	case Phase2Serial:
		var acc int64
		j := int32(0)
		for {
			v.pfx[j] = acc
			acc += v.sum[j]
			s := v.succ[j]
			if s == j {
				return
			}
			j = s
		}
	case Phase2Wyllie:
		phase2WyllieAdd(v, k, par.Procs(opt.Procs, k), sc)
	default: // Phase2Recursive
		rl := sc.reducedView(v, k, par.Procs(opt.Procs, k))
		sub := opt
		sub.M = 0 // re-derive for the reduced length
		sub.Seed = opt.Seed + 0x9e3779b97f4a7c15
		sub.Stats = nil
		child := sc.childScratch()
		if opt.Stats != nil {
			inner := Stats{}
			sub.Stats = &inner
			scanAdd(v.pfx, rl, rl.Value, sub, depth+1, child)
			opt.Stats.Depth = inner.Depth
			return
		}
		scanAdd(v.pfx, rl, rl.Value, sub, depth+1, child)
	}
}

func serialScanAddInto(out []int64, l *list.List, values []int64) {
	v := l.Head
	next := l.Next
	var sum int64
	for {
		out[v] = sum
		sum += values[v]
		nx := next[v]
		if nx == v {
			return
		}
		v = nx
	}
}
