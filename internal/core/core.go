// Package core implements the paper's list-ranking / list-scan
// algorithm (§2.5, §3): randomized sublist contraction with small
// constants.
//
// The algorithm breaks symmetry by randomly dividing the linked list of
// length n into at most m+1 sublists that are processed independently
// and in parallel:
//
//	Phase 1: traverse each sublist, accumulating the "sum" of its
//	         values, and link the sublist sums into a reduced list of
//	         at most m+1 nodes in original list order.
//	Phase 2: list-scan the reduced list (serially when it is short,
//	         with Wyllie's pointer jumping at moderate sizes, or
//	         recursively with this same algorithm when it is large).
//	         The scan values become the scan values of the sublist
//	         heads.
//	Phase 3: traverse each sublist again, expanding the head's scan
//	         value across the sublist.
//
// The implementation mirrors the paper's engineering devices:
//
//   - Splitters are chosen at random vertices; a chosen vertex becomes
//     the *tail* of the preceding sublist and its successor becomes the
//     head of a new sublist (Fig. 4). Duplicate choices are eliminated
//     by the paper's write/read competition: every virtual processor
//     writes its index at its chosen position and the ones that read a
//     different index back drop out.
//   - Each sublist tail is terminated with a self-loop and its value is
//     destructively set to the operator identity, so the traversal
//     loops contain no conditional tests: walking past the end of a
//     completed sublist just folds in the identity (§3, Phase 1).
//   - Successor sublists are discovered by writing the virtual
//     processor index at the chosen position and reading the index
//     stored at the tail the traversal reached (Fig. 6). The processor
//     that finds no index owns the tail sublist.
//   - On multiple processors, the virtual processors (sublists) are
//     assigned to workers once, each worker completes Phases 1 and 3
//     on its share independently, and only a constant number of
//     synchronizations occur (§5).
//
// Two Phase 1/3 traversal disciplines are provided. The natural MIMD
// discipline walks each sublist to completion, which is optimal for
// coarse goroutine parallelism. The lockstep discipline advances all
// active sublists one link at a time and periodically load-balances by
// packing completed sublists out of the working set on the schedule of
// §4 — the exact structure of the paper's vectorized implementation,
// kept here both to validate the schedule machinery and as an ablation
// (see package vecalg for the cycle-accurate vector version).
package core

import (
	"math/bits"

	"listrank/internal/list"
	"listrank/internal/par"
	"listrank/internal/rng"
	"listrank/internal/wyllie"
)

// Phase2Algorithm selects how the reduced list of sublist sums is
// scanned in Phase 2.
type Phase2Algorithm int

const (
	// Phase2Auto picks serial, Wyllie or recursive by reduced-list
	// length, mirroring the paper's empirically determined switchover.
	Phase2Auto Phase2Algorithm = iota
	// Phase2Serial always scans the reduced list serially.
	Phase2Serial
	// Phase2Wyllie always uses pointer jumping.
	Phase2Wyllie
	// Phase2Recursive always recurses with this algorithm (bottoming
	// out serially below the small-list threshold).
	Phase2Recursive
)

// Stats reports what a run did; pass a pointer in Options to collect.
type Stats struct {
	// Sublists is the number of sublists after duplicate elimination
	// (at most M+1).
	Sublists int
	// DuplicatesDropped counts splitter choices lost to the
	// write/read competition.
	DuplicatesDropped int
	// Phase2Len is the reduced-list length handed to Phase 2.
	Phase2Len int
	// Phase2Used is the algorithm Phase 2 actually ran.
	Phase2Used Phase2Algorithm
	// Depth is the recursion depth (0 when Phase 2 did not recurse).
	Depth int
	// PackRounds is the number of load-balancing steps performed by
	// the lockstep discipline (0 for the natural discipline).
	PackRounds int
	// LinksTraversed counts every link-following step of Phases 1 and
	// 3, including the idle steps lockstep traversal spends on
	// completed sublists. The natural discipline performs exactly
	// 2n - (sublist count) ... ≈ 2n of them; the lockstep overshoot
	// above that is the quantity the §4 schedule minimizes.
	LinksTraversed int64
	// Encoded reports whether the run used the rank-specialized
	// single-gather encoded-word engine (§3).
	Encoded bool
	// ReserveDrawn and ReserveActivated count the §7 oversampling
	// extension's reserve splitters: drawn at setup, and actually
	// activated to subdivide surviving long sublists.
	ReserveDrawn     int
	ReserveActivated int
}

// Options configures the algorithm. The zero value selects automatic
// parameters: m ≈ n/log2(n) splitters, one worker, auto Phase 2.
type Options struct {
	// Seed seeds splitter selection. Runs with equal seeds and equal
	// options are deterministic.
	Seed uint64
	// M is the number of splitters (the list is cut into at most M+1
	// sublists). M <= 0 selects DefaultM(n).
	M int
	// Procs is the number of worker goroutines for Phases 1 and 3.
	// Values < 1 mean 1.
	Procs int
	// Phase2 selects the reduced-list scan algorithm.
	Phase2 Phase2Algorithm
	// SerialCutoff is the list length at or below which the whole
	// problem is solved serially (the paper's Fig. 1 crossover region:
	// parallel overhead dominates below about a thousand vertices).
	// <= 0 selects 1024.
	SerialCutoff int
	// Discipline selects the Phase 1/3 traversal discipline.
	Discipline Discipline
	// Schedule is the lockstep pack schedule: Schedule[i] is the total
	// number of links each active sublist has traversed before the
	// i-th load balance. Empty selects a geometric default derived
	// from the expected exponential sublist-length distribution (§4).
	Schedule []int
	// DisableEncoding turns off the rank-specialized single-gather
	// encoded-word engine (§3, see rank.go), forcing Ranks through the
	// generic scan over a ones array. It exists for the
	// BenchmarkAblation_EncodedRank comparison.
	DisableEncoding bool
	// Oversample enables the §7 oversampling extension in the
	// lockstep discipline: a reserve pool of Oversample·M extra
	// splitters is drawn, and when the active set first shrinks below
	// OversampleTrigger of its initial size, the still-relevant
	// reserves subdivide the surviving long sublists (see
	// oversample.go). 0 disables. Requires Procs == 1 and lockstep;
	// otherwise it is silently ignored.
	Oversample float64
	// OversampleTrigger is the active-set fraction below which the
	// reserve pool activates; <= 0 or >= 1 selects 0.25.
	OversampleTrigger float64
	// Stats, if non-nil, is filled with run statistics.
	Stats *Stats
}

// Discipline selects how Phases 1 and 3 traverse the sublists.
type Discipline int

const (
	// DisciplineAuto walks each sublist to completion on small
	// inputs and switches to lockstep on large ones: interleaving the
	// sublist walks keeps many independent cache misses in flight,
	// which is the modern out-of-order-core analogue of the latency
	// hiding the paper obtains from virtual processing (§1.1) and
	// roughly halves the large-list wall clock in our measurements.
	DisciplineAuto Discipline = iota
	// DisciplineNatural always walks each sublist to completion.
	DisciplineNatural
	// DisciplineLockstep always advances all active sublists one link
	// per step with periodic packing on the §4 schedule — the exact
	// structure of the paper's vector implementation.
	DisciplineLockstep
)

// lockstepAutoThreshold is the list length at which DisciplineAuto
// switches to lockstep: roughly where the working set leaves the
// last-level cache and miss overlap starts to matter.
const lockstepAutoThreshold = 1 << 18

func (o Options) lockstep(n int) bool {
	switch o.Discipline {
	case DisciplineNatural:
		return false
	case DisciplineLockstep:
		return true
	default:
		return n >= lockstepAutoThreshold
	}
}

// DefaultM returns the default splitter count for a list of n
// vertices: n/⌈log2 n⌉, the paper's m ≈ n/log n guidance, which makes
// the expected sublist length about log n and keeps the Phase 2
// problem a log-factor smaller than the input.
func DefaultM(n int) int {
	if n < 4 {
		return 0
	}
	return n / bits.Len(uint(n-1))
}

const defaultSerialCutoff = 1024

func (o Options) withDefaults(n int) Options {
	if o.SerialCutoff <= 0 {
		o.SerialCutoff = defaultSerialCutoff
	}
	if o.M <= 0 {
		o.M = DefaultM(n)
	}
	if o.M > n/2 {
		o.M = n / 2
	}
	if o.Procs < 1 {
		o.Procs = 1
	}
	return o
}

// Ranks returns, for each vertex of l, the number of vertices that
// precede it in the list. Unless disabled (or the list is enormous),
// it runs the rank-specialized single-gather engine over encoded
// link+addend words (§3), which reads one memory stream per link and
// never mutates l.
func Ranks(l *list.List, opt Options) []int64 {
	n := l.Len()
	out := make([]int64, n)
	o := opt.withDefaults(n)
	if !o.DisableEncoding && n > o.SerialCutoff && n < encMaxLen && o.M >= 1 {
		ranksEnc(out, l, o, 0)
		return out
	}
	ones := make([]int64, n)
	for i := range ones {
		ones[i] = 1
	}
	scanAdd(out, l, ones, opt, 0)
	return out
}

// Scan returns the exclusive list scan of l under integer addition.
func Scan(l *list.List, opt Options) []int64 {
	out := make([]int64, l.Len())
	scanAdd(out, l, l.Value, opt, 0)
	return out
}

// ScanInto is Scan into caller-provided storage of length l.Len().
func ScanInto(dst []int64, l *list.List, opt Options) {
	scanAdd(dst, l, l.Value, opt, 0)
}

// ScanOp returns the exclusive list scan of l under an arbitrary
// associative operator with the given identity, combining strictly
// preceding values in list order (safe for non-commutative operators).
func ScanOp(l *list.List, op func(a, b int64) int64, identity int64, opt Options) []int64 {
	out := make([]int64, l.Len())
	scanOp(out, l, l.Value, op, identity, opt, 0)
	return out
}

// vp holds the per-virtual-processor (per-sublist) state. The paper
// stores five words per virtual processor (Table II: 5p+c space); we
// keep the same asymptotics with parallel arrays.
type vps struct {
	r     []int64 // splitter vertex: tail of the *previous* sublist (-1 for vp 0)
	h     []int64 // sublist head
	saved []int64 // original value at the splitter (identity-overwritten)
	sum   []int64 // Phase 1 accumulation / Phase 2 reduced value
	cur   []int64 // traversal cursor / tail reached
	succ  []int32 // successor sublist index (self for the tail sublist)
	pfx   []int64 // Phase 2 result: scan value for the sublist head
}

func newVPs(k int) *vps {
	return &vps{
		r:     make([]int64, k),
		h:     make([]int64, k),
		saved: make([]int64, k),
		sum:   make([]int64, k),
		cur:   make([]int64, k),
		succ:  make([]int32, k),
		pfx:   make([]int64, k),
	}
}

// setup draws m splitters, runs the duplicate-elimination competition
// (using out as the scratch cells the paper borrows from list
// storage), cuts the list, and returns the virtual processor table.
// On return the list is mutated: every splitter and the global tail
// are self-looped(*) with identity values; restore() undoes this.
// (*) splitters are self-looped; the global tail already is.
func setup(out []int64, l *list.List, values []int64, identity int64, m int, seed uint64, st *Stats) (*vps, int64, int64) {
	n := l.Len()
	tail := l.Tail()
	r := rng.New(seed)

	// Draw splitter positions (any vertex but the global tail; a cut
	// after the tail would create an empty sublist).
	pos := make([]int64, 0, m)
	for len(pos) < m {
		p := int64(r.Intn(n))
		if p != tail {
			pos = append(pos, p)
		}
	}
	// Competition: write our index, read it back; losers drop out.
	// Markers are offset by 1 so cell content 0 still means "nobody".
	for j, p := range pos {
		out[p] = int64(j + 1)
	}
	kept := make([]int64, 0, m+1)
	kept = append(kept, -1) // vp 0: the head sublist, no splitter
	dropped := 0
	for j, p := range pos {
		if out[p] == int64(j+1) {
			kept = append(kept, p)
		} else {
			dropped++
		}
	}
	for _, p := range pos {
		out[p] = 0 // clean the scratch for the succ competition later
	}
	out[tail] = 0 // dst may arrive dirty (ScanInto, recursion); the
	// succ competition relies on 0 meaning "nobody cut here".

	k := len(kept)
	v := newVPs(k)
	v.h[0] = l.Head
	v.r[0] = -1
	for j := 1; j < k; j++ {
		p := kept[j]
		v.r[j] = p
		v.h[j] = l.Next[p]
		v.saved[j] = values[p]
		l.Next[p] = p // terminate the previous sublist with a self-loop
	}
	savedTail := values[tail]
	// Identity-overwrite the values at every sublist tail so the
	// branch-free traversal loops can run past the end harmlessly.
	mutated := make([]int64, 0, k)
	for j := 1; j < k; j++ {
		mutated = append(mutated, v.r[j])
	}
	for _, p := range mutated {
		values[p] = identity
	}
	values[tail] = identity
	if st != nil {
		st.Sublists = k
		st.DuplicatesDropped = dropped
	}
	return v, tail, savedTail
}

// restore undoes the list mutations performed by setup.
func restore(l *list.List, values []int64, v *vps, tail, savedTail int64) {
	for j := 1; j < len(v.r); j++ {
		p := v.r[j]
		l.Next[p] = v.h[j]
		values[p] = v.saved[j]
	}
	values[tail] = savedTail
}

// findSuccessors runs the Fig. 6 write/read competition that links the
// sublist sums into the reduced list: vp j writes its (1-offset) index
// at its splitter, then reads the index at the tail its Phase 1
// traversal reached. Reading 0 means no processor cut there, i.e. the
// vp owns the tail sublist. It uses out as scratch; Phase 3 overwrites
// every touched cell with real results afterwards.
func findSuccessors(out []int64, v *vps, p int) {
	k := len(v.r)
	par.ForChunks(k-1, p, func(_, lo, hi int) {
		for j := lo + 1; j < hi+1; j++ {
			out[v.r[j]] = int64(j)
		}
	})
	par.ForChunks(k, p, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			s := out[v.cur[j]]
			if s == 0 {
				v.succ[j] = int32(j) // tail sublist
			} else {
				v.succ[j] = int32(s)
			}
		}
	})
	// Clean the scratch cells before Phase 3 reuses out for results.
	// (Phase 3 writes every vertex, including these, so cleaning is
	// not strictly required; we keep it to preserve the invariant
	// that out carries no stale markers if Phase 3 is ever skipped.)
}

// scanAdd runs the full algorithm specialized to integer addition.
// The identity is 0. It writes the exclusive scan into out.
func scanAdd(out []int64, l *list.List, values []int64, opt Options, depth int) {
	n := l.Len()
	opt = opt.withDefaults(n)
	if st := opt.Stats; st != nil {
		st.Depth = depth
	}
	if n <= opt.SerialCutoff || opt.M < 1 {
		serialScanAddInto(out, l, values)
		return
	}
	if opt.oversampleEnabled(n) {
		scanAddOversampled(out, l, values, opt, depth)
		return
	}
	v, tail, savedTail := setup(out, l, values, 0, opt.M, opt.Seed, opt.Stats)
	defer restore(l, values, v, tail, savedTail)
	k := len(v.r)
	p := par.Procs(opt.Procs, k)
	lockstep := opt.lockstep(n)

	// Phase 1: sublist sums.
	if lockstep {
		lockstepPhase1(l, values, v, p, opt)
	} else {
		par.ForChunks(k, p, func(_, lo, hi int) {
			next := l.Next
			for j := lo; j < hi; j++ {
				cur := v.h[j]
				var sum int64
				for {
					sum += values[cur]
					nx := next[cur]
					if nx == cur {
						break
					}
					cur = nx
				}
				v.sum[j] = sum
				v.cur[j] = cur
			}
		})
		if opt.Stats != nil {
			opt.Stats.LinksTraversed += int64(n) // every vertex visited once
		}
	}

	findSuccessors(out, v, p)

	// Fold each sublist's tail value (identity-overwritten in list
	// storage, preserved in saved) into the reduced value.
	par.ForChunks(k, p, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			s := v.succ[j]
			if int(s) != j {
				v.sum[j] += v.saved[s]
			}
		}
	})

	// Phase 2: scan the reduced list of sublist sums.
	phase2Add(v, k, opt, depth)

	// Phase 3: expand the head scan values across the sublists.
	if lockstep {
		lockstepPhase3(out, l, values, v, p, opt)
	} else {
		par.ForChunks(k, p, func(_, lo, hi int) {
			next := l.Next
			for j := lo; j < hi; j++ {
				cur := v.h[j]
				acc := v.pfx[j]
				for {
					out[cur] = acc
					acc += values[cur]
					nx := next[cur]
					if nx == cur {
						break
					}
					cur = nx
				}
			}
		})
	}
}

// phase2Add scans the reduced list (v.sum linked by v.succ, head vp 0)
// into v.pfx using the configured Phase 2 algorithm.
func phase2Add(v *vps, k int, opt Options, depth int) {
	alg := opt.Phase2
	if alg == Phase2Auto {
		switch {
		case k <= 2048:
			alg = Phase2Serial
		case k <= 1<<16:
			alg = Phase2Wyllie
		default:
			alg = Phase2Recursive
		}
	}
	if st := opt.Stats; st != nil {
		st.Phase2Len = k
		st.Phase2Used = alg
	}
	switch alg {
	case Phase2Serial:
		var acc int64
		j := int32(0)
		for {
			v.pfx[j] = acc
			acc += v.sum[j]
			s := v.succ[j]
			if s == j {
				return
			}
			j = s
		}
	case Phase2Wyllie:
		rl := reducedList(v, k)
		copy(v.pfx, wyllie.ScanParallel(rl, opt.Procs))
	default: // Phase2Recursive
		rl := reducedList(v, k)
		sub := opt
		sub.M = 0 // re-derive for the reduced length
		sub.Seed = opt.Seed + 0x9e3779b97f4a7c15
		sub.Stats = nil
		if opt.Stats != nil {
			inner := Stats{}
			sub.Stats = &inner
			scanAdd(v.pfx, rl, rl.Value, sub, depth+1)
			opt.Stats.Depth = inner.Depth
			return
		}
		scanAdd(v.pfx, rl, rl.Value, sub, depth+1)
	}
}

// reducedList materializes the reduced list as a list.List so Phase 2
// can reuse the other algorithms unchanged.
func reducedList(v *vps, k int) *list.List {
	rl := &list.List{
		Next:  make([]int64, k),
		Value: make([]int64, k),
		Head:  0,
	}
	for j := 0; j < k; j++ {
		rl.Next[j] = int64(v.succ[j])
		rl.Value[j] = v.sum[j]
	}
	return rl
}

func serialScanAddInto(out []int64, l *list.List, values []int64) {
	v := l.Head
	next := l.Next
	var sum int64
	for {
		out[v] = sum
		sum += values[v]
		nx := next[v]
		if nx == v {
			return
		}
		v = nx
	}
}
