package core

import "listrank/internal/list"

// Segment-rank entry points: Phase 2 of segmented ranking
// (internal/segment), exposed so the segmentation layer can scan its
// reduced boundary list with the full sublist engine — serial below
// the cutoff, Wyllie at moderate sizes, recursive contraction when a
// pathological cut pattern makes the boundary list large — without
// materializing a list.List of its own. The boundary list arrives as
// the parallel arrays segmented ranking naturally produces (per-run
// sums linked by per-run successor node indices); the reused header in
// the Scratch keeps the view conversion off the heap, so these calls
// inherit the engine's zero-allocation steady state.
//
// The arrays are temporarily mutated exactly as any list handed to the
// engine is (the sublist algorithm cuts at its splitters) and restored
// before returning, even on unwind.

// BoundaryScanAddInto writes the exclusive integer-addition scan of
// the boundary list — values `sum` linked by `next`, first node
// `head` — into pfx, which must have the same length. Working space
// comes from sc (nil borrows a pooled arena).
func BoundaryScanAddInto(pfx, next, sum []int64, head int64, opt Options, sc *Scratch) {
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	defer sc.releaseCall()
	defer func() { sc.bl = list.List{} }()
	sc.bl = list.List{Next: next, Value: sum, Head: head}
	scanAdd(pfx, &sc.bl, sum, opt, 0, sc)
}

// BoundaryScanOpInto is BoundaryScanAddInto under an arbitrary
// associative operator with the given identity, folding in list order
// (safe for non-commutative operators).
func BoundaryScanOpInto(pfx, next, sum []int64, head int64, op func(a, b int64) int64, identity int64, opt Options, sc *Scratch) {
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}
	defer sc.releaseCall()
	defer func() { sc.bl = list.List{} }()
	sc.bl = list.List{Next: next, Value: sum, Head: head}
	scanOp(pfx, &sc.bl, sum, op, identity, opt, 0, sc)
}
