package core

import (
	"testing"
	"testing/quick"

	"listrank/internal/list"
	"listrank/internal/rng"
	"listrank/internal/serial"
)

func oversampleOpts() Options {
	return Options{
		Procs:      1,
		Discipline: DisciplineLockstep,
		Oversample: 0.5,
	}
}

func TestOversampledScanMatchesSerial(t *testing.T) {
	shapes := map[string]*list.List{
		"random-2k":   list.NewRandom(2048, rng.New(1)),
		"random-10k":  list.NewRandom(10000, rng.New(2)),
		"ordered-4k":  list.NewOrdered(4096),
		"reversed-4k": list.NewReversed(4096),
		"blocked-8k":  list.NewBlocked(8192, 31, rng.New(3)),
	}
	for name, l := range shapes {
		l.RandomValues(-20, 20, rng.New(4))
		want := serial.Scan(l)
		var st Stats
		opt := oversampleOpts()
		opt.Stats = &st
		got := Scan(l, opt)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: scan[%d] = %d, want %d", name, v, got[v], want[v])
			}
		}
		if st.ReserveDrawn == 0 {
			t.Errorf("%s: no reserve splitters drawn", name)
		}
	}
}

func TestOversampledActivationHappens(t *testing.T) {
	// Large enough that the active set shrinks gradually and crosses
	// the trigger with reserves still relevant.
	l := list.NewRandom(1<<16, rng.New(5))
	var st Stats
	opt := oversampleOpts()
	opt.Stats = &st
	Scan(l, opt)
	if st.ReserveActivated == 0 {
		t.Fatalf("no reserves activated (drawn %d, sublists %d)", st.ReserveDrawn, st.Sublists)
	}
	if st.ReserveActivated > st.ReserveDrawn {
		t.Fatalf("activated %d > drawn %d", st.ReserveActivated, st.ReserveDrawn)
	}
	// The grown sublist count includes the activations.
	if st.Sublists <= st.ReserveActivated {
		t.Fatalf("Sublists = %d not grown beyond activations %d", st.Sublists, st.ReserveActivated)
	}
}

func TestOversampledTradeoff(t *testing.T) {
	// The measured shape of the §7 extension, which matches the
	// paper's prediction: subdividing the surviving long sublists
	// collapses the short-vector tail (far fewer lockstep rounds, i.e.
	// longer vectors for the same work), while the bookkeeping and the
	// extra cut-and-restart traffic cost a few percent more link
	// traversals. On a machine whose per-round startup dominates short
	// vectors the rounds matter; on one that only counts memory
	// operations the links do — which is why the paper predicted it
	// "would likely slow down the overall performance" of its
	// memory-bound loops.
	l := list.NewRandom(1<<17, rng.New(6))
	base, over := Stats{}, Stats{}

	opt := Options{Procs: 1, Discipline: DisciplineLockstep, Stats: &base}
	Scan(l, opt)

	opt = oversampleOpts()
	opt.Oversample = 1.0
	opt.Stats = &over
	Scan(l, opt)

	if over.ReserveActivated == 0 {
		t.Fatalf("no activation at this size/seed (drawn %d)", over.ReserveDrawn)
	}
	if over.PackRounds >= base.PackRounds {
		t.Errorf("oversampling did not shorten the round tail: %d vs %d rounds",
			over.PackRounds, base.PackRounds)
	}
	if over.LinksTraversed > base.LinksTraversed*11/10 {
		t.Errorf("oversampling link overhead above 10%%: %d vs %d links",
			over.LinksTraversed, base.LinksTraversed)
	}
}

func TestOversampledRestoresList(t *testing.T) {
	l := list.NewRandom(1<<14, rng.New(7))
	l.RandomValues(1, 100, rng.New(8))
	before := l.Clone()
	opt := oversampleOpts()
	opt.Oversample = 2.0
	Scan(l, opt)
	for v := range l.Next {
		if l.Next[v] != before.Next[v] || l.Value[v] != before.Value[v] {
			t.Fatalf("vertex %d not restored: next %d->%d value %d->%d",
				v, before.Next[v], l.Next[v], before.Value[v], l.Value[v])
		}
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOversampleIgnoredOffLockstepOrMultiProc(t *testing.T) {
	l := list.NewRandom(1<<14, rng.New(9))
	want := serial.Scan(l)

	// Natural discipline: option silently ignored, result correct.
	var st Stats
	got := Scan(l, Options{Procs: 1, Discipline: DisciplineNatural, Oversample: 0.5, Stats: &st})
	if st.ReserveDrawn != 0 {
		t.Errorf("reserves drawn under the natural discipline")
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("natural: scan[%d] = %d, want %d", v, got[v], want[v])
		}
	}

	// Multi-worker: ignored too.
	st = Stats{}
	got = Scan(l, Options{Procs: 4, Discipline: DisciplineLockstep, Oversample: 0.5, Stats: &st})
	if st.ReserveDrawn != 0 {
		t.Errorf("reserves drawn with 4 workers")
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("multiproc: scan[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestOversampledTriggerBounds(t *testing.T) {
	l := list.NewRandom(1<<14, rng.New(10))
	want := serial.Scan(l)
	for _, trig := range []float64{-1, 0, 0.1, 0.9, 1, 7} {
		opt := oversampleOpts()
		opt.OversampleTrigger = trig
		got := Scan(l, opt)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trigger %v: scan[%d] = %d, want %d", trig, v, got[v], want[v])
			}
		}
	}
}

// Property: oversampled scan equals serial for random sizes, seeds,
// reserve fractions and values.
func TestQuickOversampledEqualSerial(t *testing.T) {
	f := func(seed uint64, sz uint16, frac uint8) bool {
		n := int(sz)%12000 + defaultSerialCutoff + 1
		l := list.NewRandom(n, rng.New(seed))
		l.RandomValues(-100, 100, rng.New(seed+1))
		want := serial.Scan(l)
		opt := oversampleOpts()
		opt.Seed = seed
		opt.Oversample = float64(frac%40)/10 + 0.1
		got := Scan(l, opt)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return l.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
