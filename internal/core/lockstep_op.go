package core

import (
	"listrank/internal/chaos"
	"listrank/internal/kernel"
	"listrank/internal/list"
)

// Generic-operator twins of the lockstep traversal in lockstep.go,
// used by scanOp when the discipline resolves to lockstep: the same
// interleaved walk (many independent miss streams in flight) with the
// accumulation parameterized by the operator. The destructive
// initialization in setup stores the operator's identity at every
// sublist tail, so the branch-free "keep folding past the end" trick
// carries over to any monoid. Working sets come from the Scratch
// arena exactly as in lockstep.go.

func lockstepPhase1Op(l *list.List, values []int64, v *vps, p int, op func(a, b int64) int64, identity int64, opt Options, sc *Scratch) {
	k := len(v.r)
	steps, repeat := deltas(opt.Schedule, l.Len(), k)
	linksByWorker := sc.linksBuf(p)
	roundsByWorker := sc.roundsBuf(p)
	sc.active = grow(sc.active, k)
	activeAll := sc.active
	next := l.Next
	if p == 1 {
		linksByWorker[0], roundsByWorker[0] = lockstepP1OpWorker(opt.Cancel, next, values, v, activeAll, op, identity, steps, repeat, 0, k)
	} else {
		sc.fc.next, sc.fc.values = next, values
		sc.fc.op, sc.fc.identity = op, identity
		sc.fc.steps, sc.fc.repeat = steps, repeat
		sc.fc.cancel = opt.Cancel
		sc.fanout().ForChunksCtx(k, p, sc, taskLockstepP1Op)
	}
	recordLockstepStats(opt.Stats, linksByWorker, roundsByWorker)
}

func taskLockstepP1Op(c any, w, lo, hi int) {
	sc := c.(*Scratch)
	sc.links[w], sc.rounds[w] = lockstepP1OpWorker(sc.fc.cancel, sc.fc.next, sc.fc.values, &sc.v, sc.active, sc.fc.op, sc.fc.identity, sc.fc.steps, sc.fc.repeat, lo, hi)
}

func lockstepP1OpWorker(cn *Cancel, next, values []int64, v *vps, activeAll []int32, op func(a, b int64) int64, identity int64, steps []int, repeat, lo, hi int) (int64, int) {
	active := activeAll[lo:lo:hi]
	for j := lo; j < hi; j++ {
		v.sum[j] = identity
		v.cur[j] = v.h[j]
		active = append(active, int32(j))
	}
	round := 0
	var links int64
	for len(active) > 0 {
		chaos.Point(chaos.PointChunk)
		if cn.Canceled() {
			return links, round
		}
		d := repeat
		if round < len(steps) {
			d = steps[round]
		}
		for s := 0; s < d; s++ {
			kernel.StepSumOp(next, values, v.cur, v.sum, op, active)
			links += int64(len(active))
		}
		live := active[:0]
		for _, j := range active {
			if next[v.cur[j]] != v.cur[j] {
				live = append(live, j)
			}
		}
		active = live
		round++
	}
	return links, round
}

func lockstepPhase3Op(out []int64, l *list.List, values []int64, v *vps, p int, op func(a, b int64) int64, opt Options, sc *Scratch) {
	k := len(v.r)
	steps, repeat := deltas(opt.Schedule, l.Len(), k)
	linksByWorker := sc.linksBuf(p)
	roundsByWorker := sc.roundsBuf(p)
	sc.active = grow(sc.active, k)
	sc.acc = grow(sc.acc, k)
	activeAll, accAll := sc.active, sc.acc
	next := l.Next
	if p == 1 {
		linksByWorker[0], roundsByWorker[0] = lockstepP3OpWorker(opt.Cancel, out, next, values, v, activeAll, accAll, op, steps, repeat, 0, k)
	} else {
		sc.fc.out, sc.fc.next, sc.fc.values = out, next, values
		sc.fc.op = op
		sc.fc.steps, sc.fc.repeat = steps, repeat
		sc.fc.cancel = opt.Cancel
		sc.fanout().ForChunksCtx(k, p, sc, taskLockstepP3Op)
	}
	recordLockstepStats(opt.Stats, linksByWorker, roundsByWorker)
}

func taskLockstepP3Op(c any, w, lo, hi int) {
	sc := c.(*Scratch)
	sc.links[w], sc.rounds[w] = lockstepP3OpWorker(sc.fc.cancel, sc.fc.out, sc.fc.next, sc.fc.values, &sc.v, sc.active, sc.acc, sc.fc.op, sc.fc.steps, sc.fc.repeat, lo, hi)
}

func lockstepP3OpWorker(cn *Cancel, out, next, values []int64, v *vps, activeAll []int32, accAll []int64, op func(a, b int64) int64, steps []int, repeat, lo, hi int) (int64, int) {
	active := activeAll[lo:lo:hi]
	acc := accAll[lo:hi]
	base := lo
	for j := lo; j < hi; j++ {
		v.cur[j] = v.h[j]
		acc[j-base] = v.pfx[j]
		active = append(active, int32(j))
	}
	round := 0
	var links int64
	for len(active) > 0 {
		chaos.Point(chaos.PointChunk)
		if cn.Canceled() {
			return links, round
		}
		d := repeat
		if round < len(steps) {
			d = steps[round]
		}
		for s := 0; s < d; s++ {
			kernel.StepExpandOp(out, next, values, v.cur, acc, base, op, active)
			links += int64(len(active))
		}
		live := active[:0]
		for _, j := range active {
			cur := v.cur[j]
			if next[cur] != cur {
				live = append(live, j)
			} else {
				out[cur] = acc[int(j)-base] // flush before retiring
			}
		}
		active = live
		round++
	}
	return links, round
}

// recordLockstepStats folds per-worker counters into Stats.
func recordLockstepStats(st *Stats, links []int64, rounds []int) {
	if st == nil {
		return
	}
	for _, lw := range links {
		st.LinksTraversed += lw
	}
	maxRounds := 0
	for _, rw := range rounds {
		if rw > maxRounds {
			maxRounds = rw
		}
	}
	st.PackRounds += maxRounds
}
