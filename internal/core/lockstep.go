package core

import (
	"listrank/internal/chaos"
	"listrank/internal/kernel"
	"listrank/internal/list"
)

// This file implements the vector-faithful lockstep traversal
// discipline for Phases 1 and 3 (paper §3): all active sublists advance
// one link per step in unison, and every S_i total links the completed
// sublists are packed out of the working set (load balancing, §4).
//
// On a vector machine lockstep traversal is forced — the inner loop is
// a vectorized gather over the active sublists, and its efficiency
// depends on keeping the vector long — and packing is what trades
// wasted idle steps (chasing completed sublists' self-looped tails)
// against the cost of compressing the working set. On goroutines the
// natural discipline in core.go is faster, so lockstep exists here to
// validate the schedule machinery against the same semantics the
// simulator uses, and as an ablation target.
//
// Workers own disjoint chunks of the virtual processors and pack only
// locally, never across workers, exactly as §5 prescribes ("we assign
// virtual processors to physical processors once at the beginning and
// only load balance locally within each physical processor").
//
// The active sets and Phase 3 accumulators live in the Scratch arena,
// chunk-partitioned by worker inside one k-sized buffer each: worker
// w's slice activeAll[lo:lo:hi] can never grow past its own chunk, so
// disjointness is structural and no per-worker allocation occurs.

// deltas converts a cumulative schedule S_1 < S_2 < … into per-round
// step counts, with a final repeating delta for schedule exhaustion.
func deltas(schedule []int, n, m int) (steps []int, repeat int) {
	if len(schedule) > 0 {
		prev := 0
		for _, s := range schedule {
			if d := s - prev; d > 0 {
				steps = append(steps, d)
				prev = s
			}
		}
		if len(steps) > 0 {
			return steps, steps[len(steps)-1]
		}
	}
	// Default: pack every time the expected active set halves. The
	// sublist lengths are approximately exponential with mean n/m
	// (§4.1), so the active count halves every (n/m)·ln2 links.
	d := int(float64(n)/float64(m)*0.6931 + 0.5)
	if d < 1 {
		d = 1
	}
	return nil, d
}

// lockstepPhase1 computes the sublist sums with lockstep traversal and
// periodic local packing.
func lockstepPhase1(l *list.List, values []int64, v *vps, p int, opt Options, sc *Scratch) {
	k := len(v.r)
	steps, repeat := deltas(opt.Schedule, l.Len(), k)
	linksByWorker := sc.linksBuf(p)
	roundsByWorker := sc.roundsBuf(p)
	sc.active = grow(sc.active, k)
	activeAll := sc.active
	next := l.Next
	if p == 1 {
		linksByWorker[0], roundsByWorker[0] = lockstepP1Worker(opt.Cancel, next, values, v, activeAll, steps, repeat, 0, k)
	} else {
		sc.fc.next, sc.fc.values = next, values
		sc.fc.steps, sc.fc.repeat = steps, repeat
		sc.fc.cancel = opt.Cancel
		sc.fanout().ForChunksCtx(k, p, sc, taskLockstepP1)
	}
	// One extra fold per finished sublist happened when the final step
	// landed exactly on the tail; that fold added the identity and
	// needs no correction. But cursors that parked early must still
	// fold the tail's value — which is the identity too. Sums are
	// final as-is.
	recordLockstepStats(opt.Stats, linksByWorker, roundsByWorker)
}

// lockstepP1Worker runs one worker's share [lo, hi) of the Phase 1
// lockstep traversal, using its own region of the arena's active
// buffer, and returns its link and pack-round counts.
func lockstepP1Worker(cn *Cancel, next, values []int64, v *vps, activeAll []int32, steps []int, repeat, lo, hi int) (int64, int) {
	active := activeAll[lo:lo:hi]
	for j := lo; j < hi; j++ {
		v.sum[j] = 0
		v.cur[j] = v.h[j]
		active = append(active, int32(j))
	}
	round := 0
	var links int64
	for len(active) > 0 {
		chaos.Point(chaos.PointChunk)
		if cn.Canceled() {
			return links, round
		}
		d := repeat
		if round < len(steps) {
			d = steps[round]
		}
		// Traverse d links on every active sublist: the paper's
		// branch-free InitialScan inner loop (kernel.StepSumAdd).
		for s := 0; s < d; s++ {
			kernel.StepSumAdd(next, values, v.cur, v.sum, active)
			links += int64(len(active))
		}
		// Correction: the loop above folds values[cur] *before*
		// advancing, so a sublist whose cursor parks on its
		// self-looped tail keeps folding the tail's
		// identity-overwritten value — harmless, which is the
		// whole point of the destructive initialization.
		// Load balance: pack completed sublists out (InitialPack).
		live := active[:0]
		for _, j := range active {
			if next[v.cur[j]] != v.cur[j] {
				live = append(live, j)
			} else if values[v.cur[j]] != 0 {
				// The cursor can only park on an identity-valued
				// sublist tail; anything else is a corrupted list.
				panic("core: lockstep cursor parked on non-tail vertex")
			}
		}
		active = live
		round++
	}
	return links, round
}

// lockstepPhase3 expands the head scan values across the sublists with
// the same discipline (FinalScan / FinalPack).
func lockstepPhase3(out []int64, l *list.List, values []int64, v *vps, p int, opt Options, sc *Scratch) {
	k := len(v.r)
	steps, repeat := deltas(opt.Schedule, l.Len(), k)
	linksByWorker := sc.linksBuf(p)
	roundsByWorker := sc.roundsBuf(p)
	sc.active = grow(sc.active, k)
	sc.acc = grow(sc.acc, k)
	activeAll, accAll := sc.active, sc.acc
	next := l.Next
	if p == 1 {
		linksByWorker[0], roundsByWorker[0] = lockstepP3Worker(opt.Cancel, out, next, values, v, activeAll, accAll, steps, repeat, 0, k)
	} else {
		sc.fc.out, sc.fc.next, sc.fc.values = out, next, values
		sc.fc.steps, sc.fc.repeat = steps, repeat
		sc.fc.cancel = opt.Cancel
		sc.fanout().ForChunksCtx(k, p, sc, taskLockstepP3)
	}
	recordLockstepStats(opt.Stats, linksByWorker, roundsByWorker)
}

func taskLockstepP1(c any, w, lo, hi int) {
	sc := c.(*Scratch)
	sc.links[w], sc.rounds[w] = lockstepP1Worker(sc.fc.cancel, sc.fc.next, sc.fc.values, &sc.v, sc.active, sc.fc.steps, sc.fc.repeat, lo, hi)
}

func taskLockstepP3(c any, w, lo, hi int) {
	sc := c.(*Scratch)
	sc.links[w], sc.rounds[w] = lockstepP3Worker(sc.fc.cancel, sc.fc.out, sc.fc.next, sc.fc.values, &sc.v, sc.active, sc.acc, sc.fc.steps, sc.fc.repeat, lo, hi)
}

// lockstepP3Worker runs one worker's share [lo, hi) of the Phase 3
// lockstep expansion.
func lockstepP3Worker(cn *Cancel, out, next, values []int64, v *vps, activeAll []int32, accAll []int64, steps []int, repeat, lo, hi int) (int64, int) {
	active := activeAll[lo:lo:hi]
	acc := accAll[lo:hi]
	base := lo
	for j := lo; j < hi; j++ {
		v.cur[j] = v.h[j]
		acc[j-base] = v.pfx[j]
		active = append(active, int32(j))
	}
	round := 0
	var links int64
	for len(active) > 0 {
		chaos.Point(chaos.PointChunk)
		if cn.Canceled() {
			return links, round
		}
		d := repeat
		if round < len(steps) {
			d = steps[round]
		}
		for s := 0; s < d; s++ {
			kernel.StepExpandAdd(out, next, values, v.cur, acc, base, active)
			links += int64(len(active))
		}
		live := active[:0]
		for _, j := range active {
			cur := v.cur[j]
			if next[cur] != cur {
				live = append(live, j)
			} else {
				// Flush the tail's result before retiring: the
				// cursor may have just arrived and not yet
				// written out[tail-of-sublist].
				out[cur] = acc[int(j)-base]
			}
		}
		active = live
		round++
	}
	return links, round
}
