package core

import (
	"listrank/internal/chaos"
	"listrank/internal/kernel"
	"listrank/internal/list"
	"listrank/internal/par"
)

// This file is the rank-specialized engine: the paper's single-gather
// optimization (§3). "For list ranking, we are able to improve the
// performance of the loop further by reducing the number of gather
// operations to one, which is important because the Cray C90 can
// perform only one gather or scatter operation at a time. One gather
// is sufficient because we encode the link and value data for a vertex
// into a w-bit integer value, which we can do as long as the list
// length (and therefore the maximum rank) is no more than 2^(w/2)."
//
// We encode exactly that way: enc[v] = next[v]<<32 | addend, where the
// addend is 1 everywhere except at sublist tails, whose self-loop +
// zero addend make the traversal loops branch-free (idle lockstep
// steps re-add zero, precisely the paper's destructive-initialization
// device — except that here the destruction happens in the derived
// encoded array, so the rank engine never mutates the caller's list at
// all). On the goroutine track the win is one memory stream per link
// instead of two; BenchmarkAblation_EncodedRank measures it.
//
// The encoding requires links to fit in 32 bits; for n >= 2^31 the
// engine falls back to the generic scan over a ones array (the paper's
// constraint n <= 2^(w/2) in the same spirit).

// encMaxLen is the largest list the encoded representation supports.
const encMaxLen = 1 << 31

// ranksEnc runs the full rank algorithm on the encoded representation,
// writing ranks into out. Callers guarantee n > opt.SerialCutoff and
// n < encMaxLen.
func ranksEnc(out []int64, l *list.List, opt Options, depth int, sc *Scratch) {
	n := l.Len()
	if st := opt.Stats; st != nil {
		st.Depth = depth
		st.Encoded = true
	}
	v, enc := setupRank(out, l, opt, sc)
	k := len(v.r)
	p := par.Procs(opt.Procs, k)
	lockstep := opt.lockstep(n)
	lanes := opt.laneWidth(n)

	// Phase 1: sublist lengths via the single-gather loop. The addend
	// stream is folded from the same word as the link, so each
	// lane-step touches one cache line of enc and nothing else — with
	// lanes of those loads in flight per worker (kernel.SumEnc).
	opt.checkpoint(chaos.PointPhase1)
	if lockstep {
		lockstepRankPhase1(enc, v, p, opt, sc)
	} else {
		if p == 1 {
			stripSumEnc(opt.Cancel, enc, v.h, v.sum, v.cur, 0, k, lanes)
		} else {
			sc.fc.lanes = lanes
			sc.fc.cancel = opt.Cancel
			sc.fanout().ForChunksCtx(k, p, sc, taskRankSum)
		}
		if opt.Stats != nil {
			opt.Stats.LinksTraversed += int64(n)
		}
	}

	// A Phase 1 abandoned mid-chase leaves v.cur only partially
	// written: entries for sublists no worker reached are stale
	// scratch from a previous (possibly larger) problem on this
	// engine, so findSuccessors must not index out with them. Abandon
	// here rather than at the Phase 2 checkpoint.
	if opt.Cancel.Canceled() {
		panic(ErrCanceled)
	}
	findSuccessors(out, v, p, sc)

	// No tail-value fold: unlike the generic engine, the sublist
	// length already counts its tail vertex.

	// Phase 2: prefix the sublist lengths; reuses the generic solver.
	opt.checkpoint(chaos.PointPhase2)
	phase2Add(v, k, opt, depth, sc)

	// Phase 3: assign consecutive ranks along each sublist.
	opt.checkpoint(chaos.PointPhase3)
	if lockstep {
		lockstepRankPhase3(out, enc, v, p, opt, sc)
	} else {
		if p == 1 {
			stripExpandEnc(opt.Cancel, out, enc, v.h, v.pfx, 0, k, lanes)
		} else {
			sc.fc.out, sc.fc.lanes = out, lanes
			sc.fc.cancel = opt.Cancel
			sc.fanout().ForChunksCtx(k, p, sc, taskRankExpand)
		}
		if opt.Stats != nil {
			opt.Stats.LinksTraversed += int64(n)
		}
	}
	// Surface a cancellation observed mid-Phase 3 (out is partial).
	if opt.Cancel.Canceled() {
		panic(ErrCanceled)
	}
}

// taskRankSum and taskRankExpand are the natural-discipline pool
// bodies: each worker runs the lane-interleaved single-gather kernels
// over its chunk of sublists.
func taskRankSum(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	stripSumEnc(sc.fc.cancel, sc.enc, sc.v.h, sc.v.sum, sc.v.cur, lo, hi, sc.fc.lanes)
}

func taskRankExpand(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	stripExpandEnc(sc.fc.cancel, sc.fc.out, sc.enc, sc.v.h, sc.v.pfx, lo, hi, sc.fc.lanes)
}

// setupRank draws the splitters with the same parallel machinery as
// the generic setup (shared via drawSplitters) and builds the
// virtual-processor table and the encoded word array, all from the
// Scratch arena. The input list is read, never written: the cuts exist
// only in enc (self-loop + zero addend at every sublist tail).
func setupRank(out []int64, l *list.List, opt Options, sc *Scratch) (*vps, []uint64) {
	n := l.Len()
	p := par.Procs(opt.Procs, n)
	tail := findTail(l, p, sc)
	kept, dropped := drawSplitters(out, n, tail, opt.M, opt.Seed, p, sc)

	k := len(kept)
	v := sc.vps(k)
	v.h[0] = l.Head
	v.r[0] = -1
	v.saved[0] = 0

	sc.enc = grow(sc.enc, n)
	enc := sc.enc
	next := l.Next
	if p == 1 {
		encFill(enc, next, 0, n)
	} else {
		sc.fc.next = next
		sc.fanout().ForChunksCtx(n, p, sc, taskEncFill)
	}
	enc[tail] = uint64(tail) << 32
	if p == 1 {
		rankCutChunk(enc, next, v, kept, 0, k-1)
	} else {
		sc.fc.next = next
		sc.fanout().ForChunksCtx(k-1, p, sc, taskRankCut)
	}

	if st := opt.Stats; st != nil {
		st.Sublists = k
		st.DuplicatesDropped = dropped
	}
	return v, enc
}

func taskEncFill(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	encFill(sc.enc, sc.fc.next, lo, hi)
}

func taskRankCut(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	rankCutChunk(sc.enc, sc.fc.next, &sc.v, sc.kept, lo, hi)
}

func encFill(enc []uint64, next []int64, lo, hi int) {
	for i := lo; i < hi; i++ {
		enc[i] = uint64(next[i])<<32 | 1
	}
}

// rankCutChunk records splitters kept[lo+1 .. hi] in the vp table and
// cuts the encoded array only (the list itself is never written).
func rankCutChunk(enc []uint64, next []int64, v *vps, kept []int64, lo, hi int) {
	for j := lo + 1; j < hi+1; j++ {
		q := kept[j]
		v.r[j] = q
		v.h[j] = next[q]
		enc[q] = uint64(q) << 32
	}
}

// lockstepRankPhase1 is the lockstep variant of the single-gather
// length loop: all active sublists advance one encoded word per step,
// idle cursors parked on a tail re-add the zero addend, and completed
// sublists are packed out on the schedule.
func lockstepRankPhase1(enc []uint64, v *vps, p int, opt Options, sc *Scratch) {
	k := len(v.r)
	steps, repeat := deltas(opt.Schedule, len(enc), k)
	linksByWorker := sc.linksBuf(p)
	roundsByWorker := sc.roundsBuf(p)
	sc.active = grow(sc.active, k)
	activeAll := sc.active
	if p == 1 {
		linksByWorker[0], roundsByWorker[0] = lockstepRankP1Worker(opt.Cancel, enc, v, activeAll, steps, repeat, 0, k)
	} else {
		sc.fc.steps, sc.fc.repeat = steps, repeat
		sc.fc.cancel = opt.Cancel
		sc.fanout().ForChunksCtx(k, p, sc, taskLockstepRankP1)
	}
	recordLockstepStats(opt.Stats, linksByWorker, roundsByWorker)
}

func taskLockstepRankP1(c any, w, lo, hi int) {
	sc := c.(*Scratch)
	sc.links[w], sc.rounds[w] = lockstepRankP1Worker(sc.fc.cancel, sc.enc, &sc.v, sc.active, sc.fc.steps, sc.fc.repeat, lo, hi)
}

func lockstepRankP1Worker(cn *Cancel, enc []uint64, v *vps, activeAll []int32, steps []int, repeat, lo, hi int) (int64, int) {
	active := activeAll[lo:lo:hi]
	for j := lo; j < hi; j++ {
		v.sum[j] = 0
		v.cur[j] = v.h[j]
		active = append(active, int32(j))
	}
	round := 0
	var links int64
	for len(active) > 0 {
		chaos.Point(chaos.PointChunk)
		if cn.Canceled() {
			return links, round
		}
		d := repeat
		if round < len(steps) {
			d = steps[round]
		}
		for s := 0; s < d; s++ {
			kernel.StepSumEnc(enc, v.cur, v.sum, active)
			links += int64(len(active))
		}
		live := active[:0]
		for _, j := range active {
			cur := v.cur[j]
			if int64(enc[cur]>>32) != cur {
				live = append(live, j)
			} else {
				v.sum[j]++ // count the tail vertex on retirement
			}
		}
		active = live
		round++
	}
	return links, round
}

// lockstepRankPhase3 expands ranks in lockstep. The parked-cursor
// rewrite is idempotent because the tail addend is zero: out[tail]
// keeps receiving the same final rank.
func lockstepRankPhase3(out []int64, enc []uint64, v *vps, p int, opt Options, sc *Scratch) {
	k := len(v.r)
	steps, repeat := deltas(opt.Schedule, len(enc), k)
	linksByWorker := sc.linksBuf(p)
	roundsByWorker := sc.roundsBuf(p)
	sc.active = grow(sc.active, k)
	sc.acc = grow(sc.acc, k)
	activeAll, accAll := sc.active, sc.acc
	if p == 1 {
		linksByWorker[0], roundsByWorker[0] = lockstepRankP3Worker(opt.Cancel, out, enc, v, activeAll, accAll, steps, repeat, 0, k)
	} else {
		sc.fc.out, sc.fc.steps, sc.fc.repeat = out, steps, repeat
		sc.fc.cancel = opt.Cancel
		sc.fanout().ForChunksCtx(k, p, sc, taskLockstepRankP3)
	}
	recordLockstepStats(opt.Stats, linksByWorker, roundsByWorker)
}

func taskLockstepRankP3(c any, w, lo, hi int) {
	sc := c.(*Scratch)
	sc.links[w], sc.rounds[w] = lockstepRankP3Worker(sc.fc.cancel, sc.fc.out, sc.enc, &sc.v, sc.active, sc.acc, sc.fc.steps, sc.fc.repeat, lo, hi)
}

func lockstepRankP3Worker(cn *Cancel, out []int64, enc []uint64, v *vps, activeAll []int32, accAll []int64, steps []int, repeat, lo, hi int) (int64, int) {
	active := activeAll[lo:lo:hi]
	acc := accAll[lo:hi]
	base := lo
	for j := lo; j < hi; j++ {
		v.cur[j] = v.h[j]
		acc[j-base] = v.pfx[j]
		active = append(active, int32(j))
	}
	round := 0
	var links int64
	for len(active) > 0 {
		chaos.Point(chaos.PointChunk)
		if cn.Canceled() {
			return links, round
		}
		d := repeat
		if round < len(steps) {
			d = steps[round]
		}
		for s := 0; s < d; s++ {
			kernel.StepExpandEnc(out, enc, v.cur, acc, base, active)
			links += int64(len(active))
		}
		live := active[:0]
		for _, j := range active {
			cur := v.cur[j]
			if int64(enc[cur]>>32) != cur {
				live = append(live, j)
			} else {
				out[cur] = acc[int(j)-base]
			}
		}
		active = live
		round++
	}
	return links, round
}
