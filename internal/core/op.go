package core

import (
	"listrank/internal/chaos"
	"listrank/internal/list"
	"listrank/internal/par"
)

// This file is the generic-operator twin of the addition-specialized
// engine in core.go: the same three phases, parameterized by an
// arbitrary associative operator and its identity. List ranking and
// integer list scan go through the specialized engine (as the paper
// specializes its list-rank loop down to a single gather, §3); the
// generic engine supports any monoid — min/max, modular products,
// function composition — at the cost of an indirect call per link.

func scanOp(out []int64, l *list.List, values []int64, op func(a, b int64) int64, identity int64, opt Options, depth int, sc *Scratch) {
	n := l.Len()
	opt = opt.withDefaults(n)
	if st := opt.Stats; st != nil {
		st.Depth = depth
	}
	if n <= opt.SerialCutoff || opt.M < 1 {
		serialScanOpInto(out, l, values, op, identity)
		return
	}
	v, tail, savedTail := setup(out, l, values, identity, opt, sc)
	defer restore(l, values, v, tail, savedTail)
	k := len(v.r)
	p := par.Procs(opt.Procs, k)
	lockstep := opt.lockstep(n)
	lanes := opt.laneWidth(n)

	// Phase 1: sublist "sums" under op, lane-interleaved. The
	// per-sublist fold order is the serial walk's at every lane width,
	// so non-commutative operators stay correct.
	opt.checkpoint(chaos.PointPhase1)
	if lockstep {
		lockstepPhase1Op(l, values, v, p, op, identity, opt, sc)
	} else {
		if p == 1 {
			stripSumOp(opt.Cancel, l.Next, values, v.h, v.sum, v.cur, op, identity, 0, k, lanes)
		} else {
			sc.fc.next, sc.fc.values = l.Next, values
			sc.fc.op, sc.fc.identity, sc.fc.lanes = op, identity, lanes
			sc.fc.cancel = opt.Cancel
			sc.fanout().ForChunksCtx(k, p, sc, taskSumOp)
		}
		if opt.Stats != nil {
			opt.Stats.LinksTraversed += int64(n)
		}
	}

	// A canceled Phase 1 leaves v.cur partially stale (see the same
	// guard in ranksEnc); abandon before any stage consumes it.
	if opt.Cancel.Canceled() {
		panic(ErrCanceled)
	}
	findSuccessors(out, v, p, sc)

	if p == 1 {
		foldTailsOp(v, op, 0, k)
	} else {
		sc.fc.op = op
		sc.fanout().ForChunksCtx(k, p, sc, taskFoldTailsOp)
	}

	// Phase 2: like phase2Add, directly on v.sum/v.succ — serial walk,
	// predecessor-oriented pointer jumping, or recursion over an arena
	// view; the reduced list is never materialized fresh.
	opt.checkpoint(chaos.PointPhase2)
	alg := opt.Phase2
	if alg == Phase2Auto {
		switch {
		case k <= 2048:
			alg = Phase2Serial
		case k <= 1<<16:
			alg = Phase2Wyllie
		default:
			alg = Phase2Recursive
		}
	}
	if st := opt.Stats; st != nil {
		st.Phase2Len = k
		st.Phase2Used = alg
	}
	switch alg {
	case Phase2Serial:
		acc := identity
		j := int32(0)
		for {
			v.pfx[j] = acc
			acc = op(acc, v.sum[j])
			s := v.succ[j]
			if s == j {
				break
			}
			j = s
		}
	case Phase2Wyllie:
		phase2WyllieOp(v, k, p, op, identity, sc)
	default:
		rl := sc.reducedView(v, k, p)
		sub := opt
		sub.M = 0
		sub.Seed = opt.Seed + 0x9e3779b97f4a7c15
		sub.Stats = nil
		child := sc.childScratch()
		if opt.Stats != nil {
			inner := Stats{}
			sub.Stats = &inner
			scanOp(v.pfx, rl, rl.Value, op, identity, sub, depth+1, child)
			opt.Stats.Depth = inner.Depth
		} else {
			scanOp(v.pfx, rl, rl.Value, op, identity, sub, depth+1, child)
		}
	}

	// Phase 3.
	opt.checkpoint(chaos.PointPhase3)
	if lockstep {
		lockstepPhase3Op(out, l, values, v, p, op, opt, sc)
	} else {
		if p == 1 {
			stripExpandOp(opt.Cancel, out, l.Next, values, v.h, v.pfx, op, 0, k, lanes)
		} else {
			sc.fc.out, sc.fc.next, sc.fc.values = out, l.Next, values
			sc.fc.op, sc.fc.lanes = op, lanes
			sc.fc.cancel = opt.Cancel
			sc.fanout().ForChunksCtx(k, p, sc, taskExpandOp)
		}
		if opt.Stats != nil {
			opt.Stats.LinksTraversed += int64(n)
		}
	}
	// Surface a cancellation observed mid-Phase 3 (out is partial).
	if opt.Cancel.Canceled() {
		panic(ErrCanceled)
	}
}

func taskSumOp(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	stripSumOp(sc.fc.cancel, sc.fc.next, sc.fc.values, sc.v.h, sc.v.sum, sc.v.cur, sc.fc.op, sc.fc.identity, lo, hi, sc.fc.lanes)
}

func taskFoldTailsOp(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	foldTailsOp(&sc.v, sc.fc.op, lo, hi)
}

func taskExpandOp(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	stripExpandOp(sc.fc.cancel, sc.fc.out, sc.fc.next, sc.fc.values, sc.v.h, sc.v.pfx, sc.fc.op, lo, hi, sc.fc.lanes)
}

func foldTailsOp(v *vps, op func(a, b int64) int64, lo, hi int) {
	for j := lo; j < hi; j++ {
		s := v.succ[j]
		if int(s) != j {
			v.sum[j] = op(v.sum[j], v.saved[s])
		}
	}
}

func serialScanOpInto(out []int64, l *list.List, values []int64, op func(a, b int64) int64, identity int64) {
	v := l.Head
	next := l.Next
	acc := identity
	for {
		out[v] = acc
		acc = op(acc, values[v])
		nx := next[v]
		if nx == v {
			return
		}
		v = nx
	}
}
