package core

import (
	"listrank/internal/list"
	"listrank/internal/par"
	"listrank/internal/wyllie"
)

// This file is the generic-operator twin of the addition-specialized
// engine in core.go: the same three phases, parameterized by an
// arbitrary associative operator and its identity. List ranking and
// integer list scan go through the specialized engine (as the paper
// specializes its list-rank loop down to a single gather, §3); the
// generic engine supports any monoid — min/max, modular products,
// function composition — at the cost of an indirect call per link.
// Only the natural traversal discipline is provided here; lockstep is
// a vector-machine concern and its generic form lives in the simulator
// track (package vecalg).

func scanOp(out []int64, l *list.List, values []int64, op func(a, b int64) int64, identity int64, opt Options, depth int) {
	n := l.Len()
	opt = opt.withDefaults(n)
	if st := opt.Stats; st != nil {
		st.Depth = depth
	}
	if n <= opt.SerialCutoff || opt.M < 1 {
		serialScanOpInto(out, l, values, op, identity)
		return
	}
	v, tail, savedTail := setup(out, l, values, identity, opt.M, opt.Seed, opt.Stats)
	defer restore(l, values, v, tail, savedTail)
	k := len(v.r)
	p := par.Procs(opt.Procs, k)
	lockstep := opt.lockstep(n)

	// Phase 1: sublist "sums" under op.
	if lockstep {
		lockstepPhase1Op(l, values, v, p, op, identity, opt)
	} else {
		par.ForChunks(k, p, func(_, lo, hi int) {
			next := l.Next
			for j := lo; j < hi; j++ {
				cur := v.h[j]
				sum := identity
				for {
					sum = op(sum, values[cur])
					nx := next[cur]
					if nx == cur {
						break
					}
					cur = nx
				}
				v.sum[j] = sum
				v.cur[j] = cur
			}
		})
		if opt.Stats != nil {
			opt.Stats.LinksTraversed += int64(n)
		}
	}

	findSuccessors(out, v, p)

	par.ForChunks(k, p, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			s := v.succ[j]
			if int(s) != j {
				v.sum[j] = op(v.sum[j], v.saved[s])
			}
		}
	})

	// Phase 2.
	alg := opt.Phase2
	if alg == Phase2Auto {
		switch {
		case k <= 2048:
			alg = Phase2Serial
		case k <= 1<<16:
			alg = Phase2Wyllie
		default:
			alg = Phase2Recursive
		}
	}
	if st := opt.Stats; st != nil {
		st.Phase2Len = k
		st.Phase2Used = alg
	}
	switch alg {
	case Phase2Serial:
		acc := identity
		j := int32(0)
		for {
			v.pfx[j] = acc
			acc = op(acc, v.sum[j])
			s := v.succ[j]
			if s == j {
				break
			}
			j = s
		}
	case Phase2Wyllie:
		rl := reducedList(v, k)
		copy(v.pfx, wyllie.ScanOpParallel(rl, op, identity, opt.Procs))
	default:
		rl := reducedList(v, k)
		sub := opt
		sub.M = 0
		sub.Seed = opt.Seed + 0x9e3779b97f4a7c15
		sub.Stats = nil
		if opt.Stats != nil {
			inner := Stats{}
			sub.Stats = &inner
			scanOp(v.pfx, rl, rl.Value, op, identity, sub, depth+1)
			opt.Stats.Depth = inner.Depth
			break
		}
		scanOp(v.pfx, rl, rl.Value, op, identity, sub, depth+1)
	}

	// Phase 3.
	if lockstep {
		lockstepPhase3Op(out, l, values, v, p, op, opt)
		return
	}
	par.ForChunks(k, p, func(_, lo, hi int) {
		next := l.Next
		for j := lo; j < hi; j++ {
			cur := v.h[j]
			acc := v.pfx[j]
			for {
				out[cur] = acc
				acc = op(acc, values[cur])
				nx := next[cur]
				if nx == cur {
					break
				}
				cur = nx
			}
		}
	})
	if opt.Stats != nil {
		opt.Stats.LinksTraversed += int64(n)
	}
}

func serialScanOpInto(out []int64, l *list.List, values []int64, op func(a, b int64) int64, identity int64) {
	v := l.Head
	next := l.Next
	acc := identity
	for {
		out[v] = acc
		acc = op(acc, values[v])
		nx := next[v]
		if nx == v {
			return
		}
		v = nx
	}
}
