package core

import (
	"testing"
	"testing/quick"

	"listrank/internal/list"
	"listrank/internal/rng"
	"listrank/internal/serial"
)

func equal(t *testing.T, got, want []int64, what string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d want %d", what, i, got[i], want[i])
		}
	}
}

func TestRanksAcrossSizes(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{1, 2, 3, 10, 100, 1023, 1024, 1025, 5000, 1 << 15} {
		l := list.NewRandom(n, r)
		equal(t, Ranks(l, Options{Seed: uint64(n)}), l.Ranks(), "Ranks")
	}
}

func TestScanAcrossSizes(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{1, 1025, 4096, 1 << 15} {
		l := list.NewRandom(n, r)
		l.RandomValues(-100, 100, r)
		equal(t, Scan(l, Options{Seed: 7}), serial.Scan(l), "Scan")
	}
}

func TestShapes(t *testing.T) {
	for name, l := range map[string]*list.List{
		"ordered":  list.NewOrdered(5000),
		"reversed": list.NewReversed(5000),
		"blocked":  list.NewBlocked(5000, 64, rng.New(3)),
	} {
		equal(t, Ranks(l, Options{Seed: 4}), l.Ranks(), name)
	}
}

func TestProcsVariants(t *testing.T) {
	r := rng.New(5)
	l := list.NewRandom(20000, r)
	l.RandomValues(-50, 50, r)
	want := serial.Scan(l)
	for _, p := range []int{1, 2, 3, 4, 8, 16} {
		equal(t, Scan(l, Options{Seed: 6, Procs: p}), want, "Scan procs")
	}
}

func TestMVariants(t *testing.T) {
	l := list.NewRandom(8192, rng.New(7))
	want := l.Ranks()
	for _, m := range []int{1, 2, 10, 100, 1000, 4096} {
		equal(t, Ranks(l, Options{Seed: 8, M: m}), want, "Ranks m")
	}
}

func TestSeedSweep(t *testing.T) {
	l := list.NewRandom(6000, rng.New(9))
	want := l.Ranks()
	for seed := uint64(0); seed < 10; seed++ {
		equal(t, Ranks(l, Options{Seed: seed}), want, "Ranks seed")
	}
}

func TestPhase2Variants(t *testing.T) {
	r := rng.New(10)
	l := list.NewRandom(50000, r)
	l.RandomValues(-10, 10, r)
	want := serial.Scan(l)
	for _, alg := range []Phase2Algorithm{Phase2Auto, Phase2Serial, Phase2Wyllie, Phase2Recursive} {
		equal(t, Scan(l, Options{Seed: 11, Phase2: alg}), want, "phase2")
	}
}

func TestLockstepMatchesNatural(t *testing.T) {
	r := rng.New(12)
	l := list.NewRandom(30000, r)
	l.RandomValues(-20, 20, r)
	want := serial.Scan(l)
	for _, p := range []int{1, 2, 4} {
		got := Scan(l, Options{Seed: 13, Procs: p, Discipline: DisciplineLockstep})
		equal(t, got, want, "lockstep")
	}
}

func TestLockstepCustomSchedule(t *testing.T) {
	l := list.NewRandom(20000, rng.New(14))
	want := l.Ranks()
	for _, sched := range [][]int{
		{1},
		{5, 10, 20, 40, 80},
		{100},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	} {
		got := Ranks(l, Options{Seed: 15, Discipline: DisciplineLockstep, Schedule: sched})
		equal(t, got, want, "schedule")
	}
}

func TestInputRestoredAfterRun(t *testing.T) {
	r := rng.New(16)
	l := list.NewRandom(9000, r)
	l.RandomValues(-5, 5, r)
	before := l.Clone()
	_ = Scan(l, Options{Seed: 17})
	_ = Ranks(l, Options{Seed: 18, Discipline: DisciplineLockstep})
	for i := range before.Next {
		if l.Next[i] != before.Next[i] || l.Value[i] != before.Value[i] {
			t.Fatalf("input not restored at vertex %d", i)
		}
	}
}

func TestScanIntoDirtyBuffer(t *testing.T) {
	// The algorithm borrows the output array for its write/read
	// competitions; a caller-provided buffer full of garbage must not
	// confuse it.
	r := rng.New(19)
	l := list.NewRandom(5000, r)
	l.RandomValues(-9, 9, r)
	want := serial.Scan(l)
	dst := make([]int64, l.Len())
	for i := range dst {
		dst[i] = int64(i)*7 + 3 // garbage, including at the tail
	}
	ScanInto(dst, l, Options{Seed: 20}, nil)
	equal(t, dst, want, "dirty dst")
}

func TestStatsPopulated(t *testing.T) {
	l := list.NewRandom(1<<15, rng.New(21))
	st := Stats{}
	_ = Ranks(l, Options{Seed: 22, Stats: &st})
	if st.Sublists < 2 {
		t.Errorf("Sublists = %d, want many", st.Sublists)
	}
	if st.Phase2Len != st.Sublists {
		t.Errorf("Phase2Len = %d != Sublists %d", st.Phase2Len, st.Sublists)
	}
	if st.LinksTraversed < int64(l.Len()) {
		t.Errorf("LinksTraversed = %d, want >= n", st.LinksTraversed)
	}
	// Lockstep must record pack rounds and at least as many links
	// (idle steps make it >=).
	st2 := Stats{}
	_ = Ranks(l, Options{Seed: 22, Discipline: DisciplineLockstep, Stats: &st2})
	if st2.PackRounds == 0 {
		t.Error("lockstep recorded no pack rounds")
	}
	if st2.LinksTraversed < st.LinksTraversed {
		t.Errorf("lockstep links %d < natural links %d", st2.LinksTraversed, st.LinksTraversed)
	}
}

func TestRecursionDepth(t *testing.T) {
	// With a huge M relative to cutoffs the reduced list stays large
	// and Phase 2 must recurse.
	l := list.NewRandom(1<<17, rng.New(23))
	st := Stats{}
	_ = Ranks(l, Options{Seed: 24, Phase2: Phase2Recursive, Stats: &st})
	if st.Depth < 1 {
		t.Errorf("Depth = %d, want >= 1 for forced recursion", st.Depth)
	}
	equal(t, Ranks(l, Options{Seed: 24, Phase2: Phase2Recursive}), l.Ranks(), "recursive ranks")
}

func TestDuplicateSplittersHandled(t *testing.T) {
	// Tiny list with M comparable to n forces many duplicate draws.
	l := list.NewRandom(2048, rng.New(25))
	st := Stats{}
	got := Ranks(l, Options{Seed: 26, M: 1024, SerialCutoff: 16, Stats: &st})
	equal(t, got, l.Ranks(), "dup splitters")
	if st.DuplicatesDropped == 0 {
		t.Log("no duplicates this seed (unusual but possible)")
	}
	if st.Sublists > 1025 {
		t.Errorf("Sublists = %d > M+1", st.Sublists)
	}
}

func TestDefaultM(t *testing.T) {
	if DefaultM(3) != 0 {
		t.Error("DefaultM(3) should be 0 (serial)")
	}
	if m := DefaultM(1 << 20); m != (1<<20)/20 {
		t.Errorf("DefaultM(2^20) = %d, want %d", m, (1<<20)/20)
	}
	// m must stay below n/log n-ish so Phase 2 shrinks the problem.
	for _, n := range []int{100, 10000, 1 << 22} {
		if m := DefaultM(n); m >= n {
			t.Errorf("DefaultM(%d) = %d too large", n, m)
		}
	}
}

func TestScanOpNonCommutative(t *testing.T) {
	packAffine := func(a, b int64) int64 { return a<<32 | (b & 0xffffffff) }
	affine := func(f, g int64) int64 {
		fa, fb := f>>32, int64(int32(f))
		ga, gb := g>>32, int64(int32(g))
		return ((ga * fa) % 9973 << 32) | (((ga*fb + gb) % 9973) & 0xffffffff)
	}
	r := rng.New(27)
	for _, n := range []int{100, 2000, 40000} {
		l := list.NewRandom(n, r)
		for i := range l.Value {
			l.Value[i] = packAffine(int64(r.Intn(7)+1), int64(r.Intn(50)))
		}
		id := packAffine(1, 0)
		want := serial.ScanOp(l, affine, id)
		for _, p := range []int{1, 4} {
			got := ScanOp(l, affine, id, Options{Seed: 28, Procs: p, SerialCutoff: 64})
			equal(t, got, want, "ScanOp")
		}
	}
}

func TestScanOpMinOperator(t *testing.T) {
	r := rng.New(29)
	l := list.NewRandom(30000, r)
	l.RandomValues(-1000000, 1000000, r)
	minOp := func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	const posInf = int64(1 << 62)
	want := serial.ScanOp(l, minOp, posInf)
	got := ScanOp(l, minOp, posInf, Options{Seed: 30, Phase2: Phase2Recursive, SerialCutoff: 128})
	equal(t, got, want, "min scan")
}

func TestQuickAgainstSerial(t *testing.T) {
	f := func(seed uint64, nn uint16, pp, mm uint8, lockstep bool) bool {
		n := int(nn%20000) + 1
		p := int(pp%8) + 1
		r := rng.New(seed)
		l := list.NewRandom(n, r)
		l.RandomValues(-100, 100, r)
		want := serial.Scan(l)
		disc := DisciplineNatural
		if lockstep {
			disc = DisciplineLockstep
		}
		opt := Options{
			Seed:         seed ^ 0xabcdef,
			Procs:        p,
			M:            int(mm) * n / 300,
			Discipline:   disc,
			SerialCutoff: 32,
		}
		got := Scan(l, opt)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTinySerialCutoffStress(t *testing.T) {
	// Force the parallel machinery to run on very small lists where
	// every edge case (m close to n, empty sublists, adjacent
	// splitters) is likely.
	r := rng.New(31)
	for n := 2; n <= 200; n++ {
		l := list.NewRandom(n, r)
		got := Ranks(l, Options{Seed: uint64(n), M: n / 2, SerialCutoff: 1})
		equal(t, got, l.Ranks(), "tiny list")
	}
}

func BenchmarkRanks1M(b *testing.B) {
	l := list.NewRandom(1<<20, rng.New(1))
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Ranks(l, Options{Seed: uint64(i)})
	}
}

func BenchmarkScan1M(b *testing.B) {
	l := list.NewRandom(1<<20, rng.New(1))
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Scan(l, Options{Seed: uint64(i)})
	}
}

func BenchmarkScan1MParallel8(b *testing.B) {
	l := list.NewRandom(1<<20, rng.New(1))
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Scan(l, Options{Seed: uint64(i), Procs: 8})
	}
}

func BenchmarkScanLockstep1M(b *testing.B) {
	l := list.NewRandom(1<<20, rng.New(1))
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Scan(l, Options{Seed: uint64(i), Discipline: DisciplineLockstep})
	}
}

func BenchmarkScanNatural1M(b *testing.B) {
	l := list.NewRandom(1<<20, rng.New(1))
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Scan(l, Options{Seed: uint64(i), Discipline: DisciplineNatural})
	}
}

func TestScanOpLockstep(t *testing.T) {
	packAffine := func(a, b int64) int64 { return a<<32 | (b & 0xffffffff) }
	affine := func(f, g int64) int64 {
		fa, fb := f>>32, int64(int32(f))
		ga, gb := g>>32, int64(int32(g))
		return ((ga * fa) % 9973 << 32) | (((ga*fb + gb) % 9973) & 0xffffffff)
	}
	r := rng.New(33)
	l := list.NewRandom(30000, r)
	for i := range l.Value {
		l.Value[i] = packAffine(int64(r.Intn(7)+1), int64(r.Intn(50)))
	}
	id := packAffine(1, 0)
	want := serial.ScanOp(l, affine, id)
	for _, p := range []int{1, 3} {
		got := ScanOp(l, affine, id, Options{
			Seed: 34, Procs: p, SerialCutoff: 64,
			Discipline: DisciplineLockstep,
		})
		equal(t, got, want, "lockstep ScanOp")
	}
	// Max with a custom schedule, too.
	maxOp := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	const negInf = int64(-1 << 62)
	l2 := list.NewRandom(20000, r)
	l2.RandomValues(-9999, 9999, r)
	wantMax := serial.ScanOp(l2, maxOp, negInf)
	got := ScanOp(l2, maxOp, negInf, Options{
		Seed: 35, SerialCutoff: 64,
		Discipline: DisciplineLockstep, Schedule: []int{3, 9, 27, 81},
	})
	equal(t, got, wantMax, "lockstep max scan")
}
