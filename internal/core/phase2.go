package core

import (
	"listrank/internal/kernel"
	"listrank/internal/par"
	"listrank/internal/wyllie"
)

// Phase 2 pointer-jumping solvers that work directly on the reduced
// list as it already exists in the virtual-processor table — v.sum
// linked by v.succ with head vp 0 — instead of materializing a
// list.List copy and then copying the scan back into v.pfx, as the
// engine used to. The double-buffered value/link arrays come from the
// Scratch arena, the links stay int32 (half the memory traffic of the
// generic wyllie package), and the results land in v.pfx with no
// intermediate allocation or copy.

// phase2WyllieAdd scans the reduced list under integer addition with
// Wyllie's pointer jumping, successor orientation: after jumping,
// val[j] is the sum over [j, tail), so the exclusive prefix of vp j is
// val[head] - val[j]. p must already be clamped to k.
func phase2WyllieAdd(v *vps, k, p int, sc *Scratch) {
	if k == 1 {
		v.pfx[0] = 0
		return
	}
	sc.jval = grow(sc.jval, k)
	sc.jval2 = grow(sc.jval2, k)
	sc.jlnk = grow(sc.jlnk, k)
	sc.jlnk2 = grow(sc.jlnk2, k)
	val, val2, lnk, lnk2 := sc.jval, sc.jval2, sc.jlnk, sc.jlnk2
	if p == 1 {
		initJumpAdd(val, lnk, v, 0, k)
	} else {
		// Stash copies: val/lnk are reassigned by the buffer swaps
		// below, and the task bodies must read the pre-swap views.
		sc.fc.val, sc.fc.lnk = val, lnk
		sc.fanout().ForChunksCtx(k, p, sc, taskInitJumpAdd)
	}
	rounds := wyllie.Rounds(k)
	if p == 1 {
		for r := 0; r < rounds; r++ {
			kernel.JumpAdd(val2, lnk2, val, lnk, 0, k)
			val, val2 = val2, val
			lnk, lnk2 = lnk2, lnk
		}
	} else {
		sc.fc.val, sc.fc.val2, sc.fc.lnk, sc.fc.lnk2 = val, val2, lnk, lnk2
		sc.fc.k, sc.fc.p, sc.fc.rounds = k, p, rounds
		sc.fanout().RunWorkersCtx(p, sc, taskJumpAdd)
		if rounds%2 == 1 {
			val = val2
		}
	}
	total := val[0] // head vp
	if p == 1 {
		for j := 0; j < k; j++ {
			v.pfx[j] = total - val[j]
		}
	} else {
		sc.fc.val, sc.fc.total = val, total
		sc.fanout().ForChunksCtx(k, p, sc, taskPfxSub)
	}
}

func taskInitJumpAdd(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	initJumpAdd(sc.fc.val, sc.fc.lnk, &sc.v, lo, hi)
}

// taskJumpAdd runs one worker's double-buffered jump rounds,
// barrier-synchronized like wyllie.jump; the round-synchronous workers
// stay parked on the pool's reusable barrier between rounds instead of
// being respawned per phase.
func taskJumpAdd(c any, w int, b *par.Barrier) {
	sc := c.(*Scratch)
	lv, lv2, ln, ln2 := sc.fc.val, sc.fc.val2, sc.fc.lnk, sc.fc.lnk2
	k, p, rounds := sc.fc.k, sc.fc.p, sc.fc.rounds
	lo, hi := par.Chunk(k, p, w)
	for r := 0; r < rounds; r++ {
		kernel.JumpAdd(lv2, ln2, lv, ln, lo, hi)
		b.Wait()
		lv, lv2 = lv2, lv
		ln, ln2 = ln2, ln
		// All workers must finish reading the old buffers before
		// anyone writes the next round into them.
		b.Wait()
	}
}

func taskPfxSub(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	val, total := sc.fc.val, sc.fc.total
	for j := lo; j < hi; j++ {
		sc.v.pfx[j] = total - val[j]
	}
}

// initJumpAdd seeds the successor-oriented jump buffers: sublist sums
// everywhere, the addition identity at the tail vp.
func initJumpAdd(val []int64, lnk []int32, v *vps, lo, hi int) {
	for j := lo; j < hi; j++ {
		lnk[j] = v.succ[j]
		if int(v.succ[j]) == j {
			val[j] = 0 // identity at the tail: val[j] sums [j, succ[j])
		} else {
			val[j] = v.sum[j]
		}
	}
}

// phase2WyllieOp is the generic-operator twin, predecessor
// orientation (subtraction is unavailable for an arbitrary monoid):
// links are reversed so each vp folds the values of strictly earlier
// sublists in list order, which keeps non-commutative operators
// correct. After jumping, val[j] is exactly the exclusive prefix.
func phase2WyllieOp(v *vps, k, p int, op func(a, b int64) int64, identity int64, sc *Scratch) {
	if k == 1 {
		v.pfx[0] = identity
		return
	}
	sc.jval = grow(sc.jval, k)
	sc.jval2 = grow(sc.jval2, k)
	sc.jlnk = grow(sc.jlnk, k)
	sc.jlnk2 = grow(sc.jlnk2, k)
	val, val2, prd, prd2 := sc.jval, sc.jval2, sc.jlnk, sc.jlnk2
	// Build predecessor links by scatter: each vp has exactly one
	// predecessor writing it, so the stores are disjoint. The head
	// (vp 0) is its own predecessor.
	prd[0] = 0
	if p == 1 {
		scatterPreds(prd, v, 0, k)
		initJumpOp(val, prd, v, identity, 0, k)
	} else {
		// Stash copies, as in phase2WyllieAdd: val/prd are reassigned
		// by the buffer swaps below.
		sc.fc.val, sc.fc.lnk, sc.fc.identity = val, prd, identity
		sc.fanout().ForChunksCtx(k, p, sc, taskScatterPreds)
		sc.fanout().ForChunksCtx(k, p, sc, taskInitJumpOp)
	}
	rounds := wyllie.Rounds(k)
	if p == 1 {
		for r := 0; r < rounds; r++ {
			kernel.JumpOp(val2, prd2, val, prd, op, 0, k) // earlier segment first
			val, val2 = val2, val
			prd, prd2 = prd2, prd
		}
	} else {
		sc.fc.val, sc.fc.val2, sc.fc.lnk, sc.fc.lnk2 = val, val2, prd, prd2
		sc.fc.op, sc.fc.k, sc.fc.p, sc.fc.rounds = op, k, p, rounds
		sc.fanout().RunWorkersCtx(p, sc, taskJumpOp)
		if rounds%2 == 1 {
			val = val2
		}
	}
	if p == 1 {
		copy(v.pfx[:k], val[:k])
	} else {
		sc.fc.val = val
		sc.fanout().ForChunksCtx(k, p, sc, taskPfxCopy)
	}
}

func taskScatterPreds(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	scatterPreds(sc.fc.lnk, &sc.v, lo, hi)
}

func taskInitJumpOp(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	initJumpOp(sc.fc.val, sc.fc.lnk, &sc.v, sc.fc.identity, lo, hi)
}

// taskJumpOp is taskJumpAdd parameterized by the operator,
// predecessor orientation.
func taskJumpOp(c any, w int, b *par.Barrier) {
	sc := c.(*Scratch)
	lv, lv2, lp, lp2 := sc.fc.val, sc.fc.val2, sc.fc.lnk, sc.fc.lnk2
	op, k, p, rounds := sc.fc.op, sc.fc.k, sc.fc.p, sc.fc.rounds
	lo, hi := par.Chunk(k, p, w)
	for r := 0; r < rounds; r++ {
		kernel.JumpOp(lv2, lp2, lv, lp, op, lo, hi)
		b.Wait()
		lv, lv2 = lv2, lv
		lp, lp2 = lp2, lp
		b.Wait()
	}
}

func taskPfxCopy(c any, _, lo, hi int) {
	sc := c.(*Scratch)
	copy(sc.v.pfx[lo:hi], sc.fc.val[lo:hi])
}

func scatterPreds(prd []int32, v *vps, lo, hi int) {
	for j := lo; j < hi; j++ {
		s := v.succ[j]
		if int(s) != j {
			prd[s] = int32(j)
		}
	}
}

// initJumpOp seeds the predecessor-oriented jump buffers: each vp
// starts with its predecessor's sublist sum (the segment immediately
// before it), the identity at the head.
func initJumpOp(val []int64, prd []int32, v *vps, identity int64, lo, hi int) {
	for j := lo; j < hi; j++ {
		if j == 0 {
			val[j] = identity // head: empty preceding segment
		} else {
			val[j] = v.sum[prd[j]]
		}
	}
}
