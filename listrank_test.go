package listrank

import (
	"testing"
	"testing/quick"
)

func equal(t *testing.T, got, want []int64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %d want %d", what, i, got[i], want[i])
		}
	}
}

func TestListBuilders(t *testing.T) {
	for _, l := range []*List{
		NewRandomList(1000, 1),
		NewOrderedList(1000),
		FromOrder([]int{2, 0, 1, 3}),
	} {
		if err := l.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if NewRandomList(5, 1).Len() != 5 {
		t.Fatal("Len wrong")
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	l := NewRandomList(30000, 2)
	want := RankWith(l, Options{Algorithm: Serial})
	for _, alg := range []Algorithm{Sublist, Wyllie, MillerReif, AndersonMiller, RulingSet} {
		got := RankWith(l, Options{Algorithm: alg, Seed: 3})
		equal(t, got, want, "rank "+alg.String())
	}
	wantScan := ScanWith(l, Options{Algorithm: Serial})
	for _, alg := range []Algorithm{Sublist, Wyllie, MillerReif, AndersonMiller, RulingSet} {
		got := ScanWith(l, Options{Algorithm: alg, Seed: 4})
		equal(t, got, wantScan, "scan "+alg.String())
	}
}

func TestDefaultEntryPoints(t *testing.T) {
	l := NewRandomList(50000, 5)
	equal(t, Rank(l), RankWith(l, Options{Algorithm: Serial}), "Rank default")
	equal(t, Scan(l), ScanWith(l, Options{Algorithm: Serial}), "Scan default")
}

func TestRankIsScanOfOnes(t *testing.T) {
	f := func(seed uint64, nn uint16) bool {
		n := int(nn%5000) + 1
		l := NewRandomList(n, seed)
		r := Rank(l)
		s := Scan(l) // builder sets unit values
		for i := range r {
			if r[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestScanOpWith(t *testing.T) {
	l := NewRandomList(10000, 6)
	maxOp := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	const negInf = int64(-1 << 62)
	want := ScanOpWith(l, maxOp, negInf, Options{Algorithm: Serial})
	for _, alg := range []Algorithm{Sublist, Wyllie} {
		got := ScanOpWith(l, maxOp, negInf, Options{Algorithm: alg, Seed: 7})
		equal(t, got, want, "scanop "+alg.String())
	}
}

func TestOptionsKnobs(t *testing.T) {
	l := NewRandomList(20000, 8)
	want := Rank(l)
	for _, opt := range []Options{
		{Procs: 1}, {Procs: 4}, {M: 100}, {M: 5000},
		{Discipline: DisciplineLockstep}, {Discipline: DisciplineNatural, Procs: 2}, {Seed: 99},
	} {
		equal(t, RankWith(l, opt), want, "options variant")
	}
}

func TestInputUnchanged(t *testing.T) {
	l := NewRandomList(10000, 9)
	next := append([]int64(nil), l.Next...)
	val := append([]int64(nil), l.Value...)
	for _, alg := range []Algorithm{Sublist, Serial, Wyllie, MillerReif, AndersonMiller, RulingSet} {
		_ = RankWith(l, Options{Algorithm: alg, Seed: 10})
	}
	for i := range next {
		if l.Next[i] != next[i] || l.Value[i] != val[i] {
			t.Fatalf("input mutated at %d", i)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		Sublist: "sublist", Serial: "serial", Wyllie: "wyllie",
		MillerReif: "miller-reif", AndersonMiller: "anderson-miller",
		RulingSet:     "ruling-set",
		Algorithm(99): "unknown",
	}
	for a, w := range names {
		if a.String() != w {
			t.Errorf("String() = %q want %q", a.String(), w)
		}
	}
}

func TestSimulateC90(t *testing.T) {
	l := NewRandomList(20000, 11)
	want := Rank(l)
	for _, alg := range []Algorithm{Sublist, Serial, Wyllie} {
		procs := 1
		out, res, err := SimulateC90(l, alg, procs, true, 12)
		if err != nil {
			t.Fatal(err)
		}
		equal(t, out, want, "sim rank "+alg.String())
		if res.CyclesPerVertex <= 0 || res.NSPerVertex <= 0 {
			t.Errorf("%s: empty result %+v", alg.String(), res)
		}
	}
	// Scan on multiple processors.
	wantScan := Scan(l)
	out, res, err := SimulateC90(l, Sublist, 4, false, 13)
	if err != nil {
		t.Fatal(err)
	}
	equal(t, out, wantScan, "sim scan 4p")
	_, res1, _ := SimulateC90(l, Sublist, 1, false, 13)
	if res.Cycles >= res1.Cycles {
		t.Errorf("4-processor run (%.0f) not faster than 1 (%.0f)", res.Cycles, res1.Cycles)
	}
}

func TestSimulateC90Errors(t *testing.T) {
	l := NewRandomList(100, 14)
	if _, _, err := SimulateC90(l, Sublist, 0, true, 1); err == nil {
		t.Error("procs=0 accepted")
	}
	if _, _, err := SimulateC90(l, Serial, 2, true, 1); err == nil {
		t.Error("multi-proc serial accepted")
	}
	if _, _, err := SimulateC90(l, MillerReif, 2, false, 1); err == nil {
		t.Error("multi-proc Miller-Reif accepted")
	}
}

func TestSimulateAlpha(t *testing.T) {
	l := NewRandomList(8192, 15)
	want := Rank(l)
	out, ns := SimulateAlpha(l, true, false)
	equal(t, out, want, "alpha rank")
	if ns <= 0 {
		t.Error("no time modeled")
	}
	out, warmNS := SimulateAlpha(l, true, true)
	equal(t, out, want, "alpha warm rank")
	if warmNS >= ns {
		t.Errorf("warm run (%.0f) not faster than cold (%.0f)", warmNS, ns)
	}
	outS, _ := SimulateAlpha(l, false, false)
	equal(t, outS, Scan(l), "alpha scan")
}
